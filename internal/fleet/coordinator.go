package fleet

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ltephy/internal/fronthaul"
)

// Config configures a Coordinator.
type Config struct {
	// Workers is the fleet size (worker indices 0..Workers-1).
	Workers int
	// Cells is the fleet-wide cell count.
	Cells int
	// Launcher starts (and restarts) workers.
	Launcher Launcher
	// DrainTimeout bounds each migration/checkpoint drain (0 = the
	// workers' default).
	DrainTimeout time.Duration
	// CheckpointInterval is the period of the background checkpoint
	// round (drain → checkpoint → resume per cell, snapshots retained
	// for crash recovery). 0 disables the background round; explicit
	// CheckpointRound calls still work.
	CheckpointInterval time.Duration
	// HealthInterval is the supervision probe period. Defaults to 500ms.
	HealthInterval time.Duration
	// BackoffMin/BackoffMax bound the exponential restart backoff.
	// Default 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// MaxRestarts gives up on a worker after this many consecutive
	// failed restarts (0 = unlimited).
	MaxRestarts int
	// Logf receives supervision events (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Cells <= 0 {
		return c, errors.New("fleet: Cells must be positive")
	}
	if c.Launcher == nil {
		return c, errors.New("fleet: Launcher is required")
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// workerState is the coordinator's view of one fleet slot.
type workerState struct {
	mu       sync.Mutex
	w        Worker
	ctrl     *fronthaul.ControlClient
	restarts int
	// gen bumps on every (re)launch so stale health probes don't kill a
	// fresh process.
	gen int64
	// restarting is set while a restart goroutine owns the slot, so a
	// second health tick firing before the first goroutine has run its
	// gen check cannot start a concurrent restart of the same slot.
	restarting bool
}

// Coordinator supervises the fleet: it launches workers, restarts
// crashed ones with exponential backoff (restoring their cells from the
// last checkpoints), owns the placement map and executes migrations.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	workers   []*workerState
	placement Placement
	// cellMu serialises the drain-based state machines per cell: Migrate
	// and CheckpointCell each hold the cell's mutex across their whole
	// drain → checkpoint → restore/resume sequence. Without it the
	// background checkpoint round can interleave with a migration of the
	// same cell, checkpoint the released (zeroed) cell on the old owner,
	// overwrite the retained snapshot with empty state and Resume the
	// cell on the source — breaking exactly-once.
	cellMu    []sync.Mutex
	snapshots [][]byte // last checkpoint per cell (nil = none yet)
	// stable[cell] is the admission sequence the last checkpoint covers
	// (-1 until one is taken): everything at or below it survives a
	// worker crash via restore, so generators may retire those frames
	// from their replay rings.
	stable []int64
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New launches the fleet and starts supervision. On error every
// already-launched worker is killed.
//
//ltephy:spawn-point — supervise and checkpointLoop are wg-bracketed;
// Close joins both via wg.Wait.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:       cfg,
		workers:   make([]*workerState, cfg.Workers),
		placement: InitialPlacement(cfg.Cells, cfg.Workers),
		cellMu:    make([]sync.Mutex, cfg.Cells),
		snapshots: make([][]byte, cfg.Cells),
		stable:    make([]int64, cfg.Cells),
		stop:      make(chan struct{}),
	}
	for i := range co.stable {
		co.stable[i] = -1
	}
	for i := range co.workers {
		ws := &workerState{}
		if err := co.launch(ws, i, nil); err != nil {
			for _, prev := range co.workers {
				if prev != nil && prev.w != nil {
					prev.w.Kill()
				}
			}
			return nil, fmt.Errorf("fleet: launch worker %d: %w", i, err)
		}
		co.workers[i] = ws
	}
	co.wg.Add(1)
	go co.supervise() //ltephy:spawn-point joined by Close via wg
	if cfg.CheckpointInterval > 0 {
		co.wg.Add(1)
		go co.checkpointLoop() //ltephy:spawn-point joined by Close via wg
	}
	return co, nil
}

// cellSnap pairs a cell with the retained checkpoint to restore on a
// relaunched worker.
type cellSnap struct {
	cell int
	snap []byte
}

// launch starts (or restarts) a worker slot, dials its control listener
// and restores the given snapshots — all BEFORE swapping the worker into
// the slot. Resolve must not hand out the new data-plane address until
// admission/KPI/HARQ state is back, or a generator's replay would be
// admitted from scratch and double-counted. Caller holds no locks;
// ws.mu guards the swap.
func (co *Coordinator) launch(ws *workerState, index int, snaps []cellSnap) error {
	w, err := co.cfg.Launcher.Launch(index)
	if err != nil {
		return err
	}
	network, addr := w.ControlAddr()
	ctrl, err := fronthaul.DialControl(network, addr)
	if err != nil {
		w.Kill()
		return err
	}
	for _, s := range snaps {
		if err := ctrl.Restore(uint16(s.cell), s.snap); err != nil {
			// A worker without its checkpointed state must not become
			// resolvable: scratch admission would re-admit the generator's
			// replay from sequence 0 and double-count. Fail the launch so
			// restart() retries with backoff.
			ctrl.Close()
			w.Kill()
			return fmt.Errorf("restore cell %d: %w", s.cell, err)
		}
	}
	ws.mu.Lock()
	if ws.ctrl != nil {
		ws.ctrl.Close()
	}
	ws.w = w
	ws.ctrl = ctrl
	ws.gen++
	ws.mu.Unlock()
	return nil
}

// Placement returns a copy of the current placement.
func (co *Coordinator) Placement() Placement {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.placement.Clone()
}

// Resolve returns the data-plane address currently serving a cell, with
// the placement epoch it was read under.
func (co *Coordinator) Resolve(cell int) (network, addr string, epoch int64, err error) {
	co.mu.Lock()
	if cell < 0 || cell >= len(co.placement.Owner) {
		co.mu.Unlock()
		return "", "", 0, fmt.Errorf("fleet: unknown cell %d", cell)
	}
	owner := co.placement.Owner[cell]
	epoch = co.placement.Epoch
	co.mu.Unlock()
	ws := co.workers[owner]
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.w == nil {
		return "", "", 0, fmt.Errorf("fleet: worker %d down", owner)
	}
	network, addr = ws.w.DataAddr()
	return network, addr, epoch, nil
}

// control returns the live control client for a worker index.
func (co *Coordinator) control(worker int) (*fronthaul.ControlClient, error) {
	if worker < 0 || worker >= len(co.workers) {
		return nil, fmt.Errorf("fleet: unknown worker %d", worker)
	}
	ws := co.workers[worker]
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.ctrl == nil {
		return nil, fmt.Errorf("fleet: worker %d has no control connection", worker)
	}
	return ws.ctrl, nil
}

// Worker returns the worker currently filling a fleet slot (tests and
// the smoke harness's crash injection).
func (co *Coordinator) Worker(index int) (Worker, error) {
	if index < 0 || index >= len(co.workers) {
		return nil, fmt.Errorf("fleet: unknown worker %d", index)
	}
	ws := co.workers[index]
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.w == nil {
		return nil, fmt.Errorf("fleet: worker %d down", index)
	}
	return ws.w, nil
}

// Migrate moves a cell live: drain on the source, checkpoint, restore
// on the target, release the source, flip the placement. The generator
// sees AckRedirect from the source while the move is in flight,
// re-resolves, and replays unacknowledged frames to the target — where
// replays of already-counted subframes answer AckDuplicate.
func (co *Coordinator) Migrate(cell, to int) error {
	if cell < 0 || cell >= co.cfg.Cells {
		return fmt.Errorf("fleet: unknown cell %d", cell)
	}
	// Hold the cell's migration mutex across the whole move so a
	// concurrent CheckpointCell (checkpointLoop) or Migrate of the same
	// cell cannot interleave with the drain/checkpoint/release sequence.
	co.cellMu[cell].Lock()
	defer co.cellMu[cell].Unlock()
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return errors.New("fleet: coordinator closed")
	}
	from := co.placement.Owner[cell]
	co.mu.Unlock()
	if to == from {
		return nil
	}
	src, err := co.control(from)
	if err != nil {
		return err
	}
	dst, err := co.control(to)
	if err != nil {
		return err
	}
	cid := uint16(cell)
	if err := src.Drain(cid, co.cfg.DrainTimeout); err != nil {
		return fmt.Errorf("fleet: drain cell %d on worker %d: %w", cell, from, err)
	}
	snap, err := src.Checkpoint(cid)
	if err != nil {
		// Roll back: reopen the cell where it was.
		_ = src.Resume(cid)
		return fmt.Errorf("fleet: checkpoint cell %d: %w", cell, err)
	}
	if err := dst.Restore(cid, snap); err != nil {
		_ = src.Resume(cid)
		return fmt.Errorf("fleet: restore cell %d on worker %d: %w", cell, to, err)
	}
	if err := src.Release(cid); err != nil {
		// The target already owns the cell; a failed release only risks
		// double-counting on a later scrape of the source, so surface it.
		co.cfg.Logf("fleet: release cell %d on worker %d: %v", cell, from, err)
	}
	co.mu.Lock()
	co.placement.Owner[cell] = to
	co.placement.Epoch++
	co.storeSnapshotLocked(cell, snap)
	co.mu.Unlock()
	co.cfg.Logf("fleet: migrated cell %d: worker %d -> %d", cell, from, to)
	return nil
}

// storeSnapshotLocked retains a snapshot and its stable sequence.
// Caller holds co.mu.
func (co *Coordinator) storeSnapshotLocked(cell int, snap []byte) {
	co.snapshots[cell] = snap
	if ck, err := fronthaul.DecodeCheckpoint(snap); err == nil && ck.Admission.Started {
		co.stable[cell] = ck.Admission.LastSeq
	}
}

// StableSeq returns the admission sequence the cell's last retained
// checkpoint covers (-1 before the first checkpoint). Subframes at or
// below it survive a worker crash without replay; generators trim
// their replay rings against it.
func (co *Coordinator) StableSeq(cell int) int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	if cell < 0 || cell >= len(co.stable) {
		return -1
	}
	return co.stable[cell]
}

// CheckpointCell drains, checkpoints and resumes one cell in place,
// retaining the snapshot for crash recovery. The pause is the drain
// barrier only — typically a few subframe periods. The cell's migration
// mutex is held throughout, so the owner read here stays the owner for
// the whole drain/checkpoint/resume sequence even while RebalanceOnce
// or an explicit Migrate runs concurrently.
func (co *Coordinator) CheckpointCell(cell int) error {
	if cell < 0 || cell >= co.cfg.Cells {
		return fmt.Errorf("fleet: unknown cell %d", cell)
	}
	co.cellMu[cell].Lock()
	defer co.cellMu[cell].Unlock()
	co.mu.Lock()
	owner := co.placement.Owner[cell]
	co.mu.Unlock()
	ctrl, err := co.control(owner)
	if err != nil {
		return err
	}
	cid := uint16(cell)
	if err := ctrl.Drain(cid, co.cfg.DrainTimeout); err != nil {
		return err
	}
	snap, err := ctrl.Checkpoint(cid)
	if rerr := ctrl.Resume(cid); err == nil {
		err = rerr
	}
	if err != nil {
		return err
	}
	co.mu.Lock()
	co.storeSnapshotLocked(cell, snap)
	co.mu.Unlock()
	return nil
}

// CheckpointRound checkpoints every cell (first error wins, the round
// still visits all cells).
func (co *Coordinator) CheckpointRound() error {
	var firstErr error
	for cell := 0; cell < co.cfg.Cells; cell++ {
		if err := co.CheckpointCell(cell); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Snapshot returns the last retained checkpoint for a cell (nil if none
// was taken yet).
func (co *Coordinator) Snapshot(cell int) []byte {
	co.mu.Lock()
	defer co.mu.Unlock()
	if cell < 0 || cell >= len(co.snapshots) {
		return nil
	}
	return co.snapshots[cell]
}

// checkpointLoop runs the periodic checkpoint round.
func (co *Coordinator) checkpointLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			if err := co.CheckpointRound(); err != nil {
				co.cfg.Logf("fleet: checkpoint round: %v", err)
			}
		}
	}
}

// supervise watches every worker and restarts crashed ones. Each
// restart (backoff sleep included) runs in its own goroutine so one
// slot backing off never stalls crash detection on the others.
//
//ltephy:spawn-point — restart goroutines are wg-bracketed; Close joins
// them via wg.Wait after closing stop (which aborts their backoff).
func (co *Coordinator) supervise() {
	defer co.wg.Done()
	probe := &http.Client{Timeout: 2 * time.Second}
	t := time.NewTicker(co.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
		}
		for i, ws := range co.workers {
			ws.mu.Lock()
			w, gen := ws.w, ws.gen
			ws.mu.Unlock()
			if w == nil {
				continue // gave up on this slot
			}
			dead := false
			select {
			case <-w.Done():
				dead = true
			default:
				// Liveness probe when the worker exposes one; a worker that
				// stops answering is treated as crashed.
				if url := w.FetchURL(); url != "" {
					if resp, err := probe.Get(url + "/healthz"); err != nil {
						dead = true
					} else {
						resp.Body.Close()
						dead = resp.StatusCode != http.StatusOK
					}
				}
			}
			if dead {
				co.wg.Add(1)
				go func(ws *workerState, i int, gen int64) {
					defer co.wg.Done()
					co.restart(ws, i, gen)
				}(ws, i, gen)
			}
		}
	}
}

// restart relaunches a crashed worker with exponential backoff and
// restores its cells from the retained checkpoints, retrying failed
// relaunches (each attempt consumes one MaxRestarts credit). gen and
// the restarting flag guard against a concurrent restart of the same
// slot; the backoff sleep runs on the caller's (per-slot) goroutine.
func (co *Coordinator) restart(ws *workerState, index int, gen int64) {
	ws.mu.Lock()
	if ws.gen != gen || ws.restarting {
		ws.mu.Unlock()
		return // someone already owns this slot's relaunch
	}
	ws.restarting = true
	if ws.w != nil {
		ws.w.Kill()
		ws.w = nil
	}
	ws.mu.Unlock()
	defer func() {
		ws.mu.Lock()
		ws.restarting = false
		ws.mu.Unlock()
	}()

	for {
		ws.mu.Lock()
		restarts := ws.restarts
		ws.restarts++
		ws.mu.Unlock()
		if co.cfg.MaxRestarts > 0 && restarts >= co.cfg.MaxRestarts {
			co.cfg.Logf("fleet: worker %d exceeded %d restarts, giving up", index, co.cfg.MaxRestarts)
			return
		}
		backoff := co.cfg.BackoffMin << uint(restarts)
		if backoff > co.cfg.BackoffMax || backoff <= 0 {
			backoff = co.cfg.BackoffMax
		}
		co.cfg.Logf("fleet: worker %d down, restarting in %v (attempt %d)", index, backoff, restarts+1)
		select {
		case <-co.stop:
			return
		case <-time.After(backoff):
		}
		// Gather the worker's cells and their last checkpoints: launch
		// restores them before the worker becomes resolvable, so admission
		// resumes at the checkpointed sequence — the generator's replay of
		// frames past it is admitted exactly once and earlier replays answer
		// AckDuplicate.
		co.mu.Lock()
		snaps := make([]cellSnap, 0, len(co.placement.Owner))
		for cell, owner := range co.placement.Owner {
			if owner == index && co.snapshots[cell] != nil {
				snaps = append(snaps, cellSnap{cell: cell, snap: co.snapshots[cell]})
			}
		}
		co.mu.Unlock()
		if err := co.launch(ws, index, snaps); err != nil {
			co.cfg.Logf("fleet: relaunch worker %d: %v", index, err)
			continue
		}
		co.mu.Lock()
		co.placement.Epoch++
		co.mu.Unlock()
		co.cfg.Logf("fleet: worker %d back, %d cells restored", index, len(snaps))
		return
	}
}

// Stats scrapes every cell's serving counters from its current owner.
func (co *Coordinator) Stats() ([]fronthaul.CellStats, error) {
	out := make([]fronthaul.CellStats, 0, co.cfg.Cells)
	var firstErr error
	for cell := 0; cell < co.cfg.Cells; cell++ {
		co.mu.Lock()
		owner := co.placement.Owner[cell]
		co.mu.Unlock()
		ctrl, err := co.control(owner)
		if err == nil {
			var st fronthaul.CellStats
			if st, err = ctrl.Stats(uint16(cell)); err == nil {
				out = append(out, st)
				continue
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("fleet: stats cell %d: %w", cell, err)
		}
	}
	return out, firstErr
}

// Rebalance plans and executes up to maxMoves migrations from the
// current scraped load (see Rebalance for the policy).
func (co *Coordinator) RebalanceOnce(maxMoves int, tolerance, shedHot float64) ([]Move, error) {
	stats, err := co.Stats()
	if err != nil {
		return nil, err
	}
	loads := make([]CellLoad, 0, len(stats))
	for _, st := range stats {
		l := CellLoad{Cell: st.Cell, Activity: st.OfferedEst}
		if st.OfferedEst > 0 {
			l.ShedFraction = 1 - st.AdmittedEst/st.OfferedEst
		}
		loads = append(loads, l)
	}
	moves := Rebalance(co.Placement(), loads, co.cfg.Workers, maxMoves, tolerance, shedHot)
	for _, m := range moves {
		if err := co.Migrate(m.Cell, m.To); err != nil {
			return moves, err
		}
	}
	return moves, nil
}

// Close stops supervision and kills every worker.
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	co.mu.Unlock()
	close(co.stop)
	co.wg.Wait()
	for _, ws := range co.workers {
		ws.mu.Lock()
		if ws.ctrl != nil {
			ws.ctrl.Close()
		}
		if ws.w != nil {
			ws.w.Kill()
		}
		ws.mu.Unlock()
	}
}
