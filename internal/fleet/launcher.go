package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"ltephy/internal/fronthaul"
)

// Worker is one supervised eNB serving process, however it is hosted:
// an lte-enb child process (ExecLauncher) or an in-process
// fronthaul.Server (InProcLauncher, used by tests and lte-bench -fleet).
type Worker interface {
	// Index is the worker's fleet slot (stable across restarts).
	Index() int
	// DataAddr returns the data-plane listener ("tcp"/"unix", address).
	DataAddr() (network, addr string)
	// ControlAddr returns the control-plane listener.
	ControlAddr() (network, addr string)
	// FetchURL is the base URL of the worker's observability endpoint
	// ("" when metrics are disabled).
	FetchURL() string
	// Done is closed when the worker process exits, however it died.
	Done() <-chan struct{}
	// Kill force-stops the worker (supervisor shutdown and crash
	// injection in the smoke harness).
	Kill()
}

// Launcher starts workers. Launch blocks until the worker's listeners
// are reachable (the coordinator dials control immediately after).
type Launcher interface {
	Launch(index int) (Worker, error)
}

// ---- in-process launcher ----

// InProcConfig templates the servers an InProcLauncher hosts. Cells is
// the fleet-wide cell count: every worker serves the full cell index
// space (a cell's frames are only routed to its owner, and migration
// needs the target to already have the cell's serving state allocated).
type InProcConfig struct {
	// Server is the per-worker fronthaul configuration (Cells is
	// overridden with the fleet cell count).
	Server fronthaul.Config
	// Cells is the fleet-wide cell index space.
	Cells int
	// Metrics serves each worker's observability mux on a loopback
	// listener when true.
	Metrics bool
}

// InProcLauncher hosts workers as in-process fronthaul servers on
// loopback TCP listeners. It exercises the same wire protocols as real
// processes (data, control and HTTP scrape all cross real sockets);
// only process isolation is simulated — Kill closes the server instead
// of killing a PID.
type InProcLauncher struct {
	Cfg InProcConfig

	mu      sync.Mutex
	workers []*inProcWorker
}

// inProcWorker is one hosted server and its listeners.
type inProcWorker struct {
	index    int
	srv      *fronthaul.Server
	dataLn   net.Listener
	ctrlLn   net.Listener
	httpLn   net.Listener
	fetchURL string
	done     chan struct{}
	killOnce sync.Once
	wg       sync.WaitGroup
}

// Launch implements Launcher.
//
// Every goroutine is wg-bracketed: the serve loops and the metrics
// server unblock when Kill closes their listeners, the reaper consumes
// one serve error (srvErr is buffered for both) and closes done; the
// launcher's Close joins the bracket after killing the worker.
//
//ltephy:spawn-point
func (l *InProcLauncher) Launch(index int) (Worker, error) {
	cfg := l.Cfg.Server
	if l.Cfg.Cells > 0 {
		cfg.Cells = l.Cfg.Cells
	}
	srv, err := fronthaul.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	w := &inProcWorker{index: index, srv: srv, done: make(chan struct{})}
	if w.dataLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
		srv.Close()
		return nil, err
	}
	if w.ctrlLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
		w.dataLn.Close()
		srv.Close()
		return nil, err
	}
	if l.Cfg.Metrics {
		if w.httpLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			w.ctrlLn.Close()
			w.dataLn.Close()
			srv.Close()
			return nil, err
		}
		w.fetchURL = "http://" + w.httpLn.Addr().String()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			_ = http.Serve(w.httpLn, srv.Handler())
		}()
	}
	srvErr := make(chan error, 2)
	w.wg.Add(3)
	go func() {
		defer w.wg.Done()
		srvErr <- srv.Serve(w.dataLn)
	}()
	go func() {
		defer w.wg.Done()
		srvErr <- srv.ServeControl(w.ctrlLn)
	}()
	go func() {
		defer w.wg.Done()
		<-srvErr // either listener failing means the worker is dead
		w.Kill()
	}()
	l.mu.Lock()
	l.workers = append(l.workers, w)
	l.mu.Unlock()
	return w, nil
}

// Close kills every worker the launcher ever started and joins their
// goroutines (the reaper may not call Kill on itself, so the wait lives
// here rather than in Kill).
func (l *InProcLauncher) Close() {
	l.mu.Lock()
	ws := append([]*inProcWorker(nil), l.workers...)
	l.mu.Unlock()
	for _, w := range ws {
		w.Kill()
	}
	for _, w := range ws {
		w.wg.Wait()
	}
}

func (w *inProcWorker) Index() int { return w.index }

func (w *inProcWorker) DataAddr() (string, string) {
	return "tcp", w.dataLn.Addr().String()
}

func (w *inProcWorker) ControlAddr() (string, string) {
	return "tcp", w.ctrlLn.Addr().String()
}

func (w *inProcWorker) FetchURL() string { return w.fetchURL }

func (w *inProcWorker) Done() <-chan struct{} { return w.done }

// Server exposes the hosted server for white-box assertions in tests.
func (w *inProcWorker) Server() *fronthaul.Server { return w.srv }

func (w *inProcWorker) Kill() {
	w.killOnce.Do(func() {
		w.dataLn.Close()
		w.ctrlLn.Close()
		if w.httpLn != nil {
			w.httpLn.Close()
		}
		w.srv.Close()
		close(w.done)
	})
}

// ---- exec launcher ----

// portsFile is the JSON handshake an lte-enb child writes once its
// listeners are bound (the -ports-file flag): the parent polls the file
// to learn the ephemeral addresses.
type portsFile struct {
	Data    string `json:"data"`
	Control string `json:"control"`
	Metrics string `json:"metrics,omitempty"`
}

// ExecLauncher spawns real lte-enb child processes. Each child listens
// on ephemeral loopback ports and reports them through a ports file in
// Dir.
type ExecLauncher struct {
	// Bin is the lte-enb binary path.
	Bin string
	// Dir holds per-worker ports files (and is a convenient artifact
	// home). Required.
	Dir string
	// Cells is the fleet-wide cell index space every worker serves.
	Cells int
	// ExtraArgs are appended to every worker's command line (pools,
	// capacity, turbo mode, ...).
	ExtraArgs []string
	// Metrics asks workers to serve their observability endpoint.
	Metrics bool
	// StartTimeout bounds the ports-file handshake. Defaults to 10s.
	StartTimeout time.Duration
	// Stderr, when non-nil, receives every child's combined output.
	Stderr *os.File
}

// execWorker is one spawned lte-enb process.
type execWorker struct {
	index    int
	cmd      *exec.Cmd
	ports    portsFile
	done     chan struct{}
	killOnce sync.Once
	wg       sync.WaitGroup
}

// Launch implements Launcher: spawn the child, wait for its ports file,
// verify the control listener answers.
//
//ltephy:spawn-point — the child reaper is wg-bracketed; Kill joins it
// after SIGKILL, so a killed worker is always reaped (no zombies).
func (l *ExecLauncher) Launch(index int) (Worker, error) {
	if l.Bin == "" || l.Dir == "" {
		return nil, errors.New("fleet: ExecLauncher needs Bin and Dir")
	}
	timeout := l.StartTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	pf := l.Dir + "/worker" + strconv.Itoa(index) + ".ports"
	os.Remove(pf)
	args := []string{
		"-listen", "127.0.0.1:0",
		"-control", "127.0.0.1:0",
		"-cells", strconv.Itoa(l.Cells),
		"-ports-file", pf,
	}
	if l.Metrics {
		args = append(args, "-metrics-addr", "127.0.0.1:0")
	}
	args = append(args, l.ExtraArgs...)
	cmd := exec.Command(l.Bin, args...)
	if l.Stderr != nil {
		cmd.Stdout = l.Stderr
		cmd.Stderr = l.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &execWorker{index: index, cmd: cmd, done: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		_ = cmd.Wait()
		close(w.done)
	}()

	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(pf)
		if err == nil && json.Unmarshal(data, &w.ports) == nil && w.ports.Control != "" {
			break
		}
		select {
		case <-w.done:
			return nil, fmt.Errorf("fleet: worker %d exited during startup", index)
		default:
		}
		if time.Now().After(deadline) {
			w.Kill()
			return nil, fmt.Errorf("fleet: worker %d ports handshake timed out after %v", index, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return w, nil
}

func (w *execWorker) Index() int { return w.index }

func (w *execWorker) DataAddr() (string, string) { return "tcp", w.ports.Data }

func (w *execWorker) ControlAddr() (string, string) { return "tcp", w.ports.Control }

func (w *execWorker) FetchURL() string {
	if w.ports.Metrics == "" {
		return ""
	}
	return "http://" + w.ports.Metrics
}

func (w *execWorker) Done() <-chan struct{} { return w.done }

func (w *execWorker) Kill() {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
	})
	w.wg.Wait()
}
