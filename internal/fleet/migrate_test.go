package fleet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"ltephy/internal/fronthaul"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// harqTrace is a two-transmission HARQ scenario: a heavily punctured
// rv-0 transmission that fails CRC on its own, then an rv-2
// retransmission of the same payload whose soft-combined decode
// recovers the block (the scenario TestHARQIncrementalRedundancy pins
// at the receiver level).
type harqTrace struct {
	rx     uplink.ReceiverConfig
	frames [][]byte // one single-user frame per transmission round
}

func newHARQTrace(t *testing.T) harqTrace {
	t.Helper()
	cfg := tx.DefaultConfig()
	cfg.Receiver.Turbo = uplink.TurboFull
	cfg.Receiver.CodeRate = 0.85
	cfg.SNRdB = 7

	p := uplink.UserParams{ID: 1, PRB: 6, Layers: 1, Mod: modulation.QAM16}
	format, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, cfg.Receiver.CodeRate)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]uint8, format.PayloadBits)
	pr := rng.New(77)
	for i := range payload {
		payload[i] = pr.Bit()
	}

	tr := harqTrace{rx: cfg.Receiver}
	for round, seed := range []uint64{101, 202} {
		u, err := tx.GenerateWithPayload(cfg, p, rng.New(seed), payload, uplink.RVForRound(round))
		if err != nil {
			t.Fatal(err)
		}
		frame, err := fronthaul.AppendFrame(nil, 0, int64(round), []fronthaul.FrameUser{{Data: u}})
		if err != nil {
			t.Fatal(err)
		}
		tr.frames = append(tr.frames, frame)
	}
	return tr
}

// sendOne dials the cell's current owner, sends one frame and waits for
// its Done ack.
func sendOne(t *testing.T, co *Coordinator, frame []byte) {
	t.Helper()
	network, addr, _, err := co.Resolve(0)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	var buf [fronthaul.AckLen]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		t.Fatalf("read ack: %v", err)
	}
	a, err := fronthaul.ParseAck(&buf)
	if err != nil {
		t.Fatalf("ParseAck: %v", err)
	}
	if a.Status != fronthaul.AckDone {
		t.Fatalf("ack = %+v, want done", a)
	}
}

// runHARQTrace plays the trace against a fresh fleet, checkpointing
// after the first transmission — via a live migration to a second
// worker when migrate is set, via an in-place checkpoint round
// otherwise — and returns the mid-trace and final snapshots.
func runHARQTrace(t *testing.T, tr harqTrace, migrate bool) (mid, final []byte) {
	t.Helper()
	srvCfg := fronthaul.Config{
		Workers:        1,
		Pools:          1,
		Receiver:       tr.rx,
		DeadlineBudget: time.Minute,
		Predictor:      fronthaul.FlatPredictor{PerPRB: 1e-3},
		HARQ:           true,
		KPISampling:    1,
		Seed:           3,
	}
	l := &InProcLauncher{Cfg: InProcConfig{Server: srvCfg, Cells: 1}}
	co, err := New(Config{
		Workers:      2,
		Cells:        1,
		Launcher:     l,
		DrainTimeout: 5 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	defer func() { co.Close(); l.Close() }()

	sendOne(t, co, tr.frames[0])
	if migrate {
		if err := co.Migrate(0, 1); err != nil {
			t.Fatalf("Migrate: %v", err)
		}
	} else {
		if err := co.CheckpointCell(0); err != nil {
			t.Fatalf("CheckpointCell: %v", err)
		}
	}
	mid = co.Snapshot(0)
	sendOne(t, co, tr.frames[1])
	if err := co.CheckpointCell(0); err != nil {
		t.Fatalf("final CheckpointCell: %v", err)
	}
	final = co.Snapshot(0)
	return mid, final
}

// TestMigrationBitIdentity: a live migration between the two HARQ
// transmissions must be invisible in every checkpointed bit — the
// mid-trace snapshot (carrying the accumulated soft-buffer mother) and
// the final snapshot (carrying the combined-decode KPI) are
// byte-identical to an unmigrated run's.
func TestMigrationBitIdentity(t *testing.T) {
	tr := newHARQTrace(t)

	baseMid, baseFinal := runHARQTrace(t, tr, false)
	migMid, migFinal := runHARQTrace(t, tr, true)

	ckMid, err := fronthaul.DecodeCheckpoint(baseMid)
	if err != nil {
		t.Fatalf("decode mid snapshot: %v", err)
	}
	if ckMid.KPI.Cell.CrcPass != 0 {
		t.Skip("first transmission decoded on its own; scenario needs a harsher channel seed")
	}
	if len(ckMid.HARQ) != 1 || len(ckMid.HARQ[0].Mother) == 0 {
		t.Fatalf("mid snapshot carries no HARQ soft state: %+v", ckMid.HARQ)
	}
	if ckMid.KPI.Cell.CrcFail != 1 {
		t.Fatalf("mid snapshot KPI: %+v, want one CRC fail", ckMid.KPI.Cell)
	}

	if !bytes.Equal(baseMid, migMid) {
		t.Fatalf("mid-trace snapshots differ: migration perturbed checkpointed state")
	}
	if !bytes.Equal(baseFinal, migFinal) {
		t.Fatalf("final snapshots differ: migration perturbed the HARQ continuation")
	}

	// The retransmission must have been recovered by soft combining, on
	// the migrated target no less: the ledger slot retired and the block
	// counts as delivered.
	ckFinal, err := fronthaul.DecodeCheckpoint(baseFinal)
	if err != nil {
		t.Fatalf("decode final snapshot: %v", err)
	}
	if len(ckFinal.HARQ) != 0 {
		t.Fatalf("final snapshot still holds HARQ state: %+v", ckFinal.HARQ)
	}
	if c := ckFinal.KPI.Cell; c.CrcPass != 1 || c.CrcFail != 1 || c.Bits == 0 {
		t.Fatalf("final KPI: %+v, want the combined block delivered", c)
	}
}
