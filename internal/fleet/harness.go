package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"ltephy/internal/fronthaul"
	"ltephy/internal/obs"
	"ltephy/internal/obs/kpi"
	"ltephy/internal/params"
	"ltephy/internal/rng"
	"ltephy/internal/sched"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// HarnessConfig configures the fleet load harness: one replaying
// generator per cell, routed by the coordinator's placement map, with a
// diurnal offered-load ramp. Unlike the single-server loopback
// generator, every frame is retained until its terminal ack: a worker
// crash or live migration triggers re-resolution and replay, and the
// servers' duplicate detection makes the replay idempotent — no
// subframe lost, none double-counted.
type HarnessConfig struct {
	// Coordinator resolves cell placement and is re-queried on redirects
	// and connection loss.
	Coordinator *Coordinator
	// Cells is the number of cells to drive (0..Cells-1).
	Cells int
	// Subframes is the sequence count per cell.
	Subframes int
	// Interval paces frames per cell (0 = as fast as the transport
	// allows).
	Interval time.Duration
	// Load scales the offered users per subframe on top of the diurnal
	// curve (like lte-bench -load).
	Load float64
	// SubframesPerDay compresses the diurnal day curve (default: the
	// run length, so one run spans one day).
	SubframesPerDay int
	// FloorLoad/PeakLoad bound the diurnal curve (defaults 0.05/0.6).
	FloorLoad, PeakLoad float64
	// Seed drives the per-cell parameter models and signal synthesis.
	Seed uint64
	// MaxPRB clamps per-user PRBs (0 = no clamp).
	MaxPRB int
	// MaxUsers caps users per frame. Defaults to MaxUsersPerFrame.
	MaxUsers int
	// Window bounds unacknowledged frames in flight per cell. Defaults
	// to 32.
	Window int
	// DTXProb flags each offered user DTX (scheduled-but-absent) with
	// this probability, from a per-cell rng stream. The flag is baked
	// into the retained frame bytes, so replays carry identical DTX sets
	// and the servers' exactly-once accounting is exercised end to end.
	DTXProb float64
	// TX configures signal synthesis (must match the workers' receiver).
	TX tx.Config
	// CacheSets rotates input-data realisations (default 4).
	CacheSets int
	// Timeout bounds the whole run per cell, including crash-restart
	// stalls. Defaults to 120s.
	Timeout time.Duration
	// OnSeq, when non-nil, is called by cell 0's generator after sending
	// each sequence — the smoke harness's hook for forcing a migration
	// or a worker crash at a deterministic point in the run.
	OnSeq func(seq int64)
}

// HarnessStats is the fleet-wide result of a harness run.
type HarnessStats struct {
	// Sent counts first transmissions (Subframes x Cells when the run
	// completed); Replayed counts retransmissions after redirects or
	// connection loss; Reconnects counts placement re-resolutions.
	Sent, Replayed, Reconnects int64
	// Terminal ack dispositions. Duplicate acks mean the original ack
	// was lost but the subframe WAS processed — never a loss.
	Done, ShedOverload, ShedBackpressure, Duplicate int64
	// UsersSent/UsersAccepted/UsersDTX mirror the loopback generator.
	UsersSent, UsersAccepted, UsersDTX int64
	// BadAcks counts unparseable or unknown-sequence acks.
	BadAcks int64
	// Lost counts subframes with no terminal ack when the run gave up —
	// the zero-loss acceptance gate.
	Lost int64
	// P50/P90/P99/P999/Max are send-to-done latency percentiles.
	P50, P90, P99, P999, Max time.Duration
	// Fleet is the aggregated per-worker /fetch rollup.
	Fleet kpi.FleetFetch
	// PredictedShed is the estimator-predicted shed budget: the fraction
	// of offered activity the granted admission budget (burst + one
	// capacity refill per subframe period, per cell) cannot cover.
	// MeasuredShed is the realized activity-weighted shed fraction
	// (1 - admitted/offered estimated activity) — the fleet-wide
	// counterpart of the single-process overload-soak guarantee.
	PredictedShed, MeasuredShed float64
}

// String renders the greppable summary line the fleet-smoke CI job
// asserts on.
func (h HarnessStats) String() string {
	return fmt.Sprintf(
		"sent=%d replayed=%d reconnects=%d done=%d shed_overload=%d shed_backpressure=%d "+
			"duplicate=%d lost=%d users_sent=%d users_accepted=%d users_dtx=%d corrupt=%d "+
			"kpi_total=%d predicted_shed=%.4f measured_shed=%.4f "+
			"p50=%v p90=%v p99=%v p999=%v max=%v",
		h.Sent, h.Replayed, h.Reconnects, h.Done, h.ShedOverload, h.ShedBackpressure,
		h.Duplicate, h.Lost, h.UsersSent, h.UsersAccepted, h.UsersDTX, h.BadAcks,
		h.Fleet.Total.CrcPass+h.Fleet.Total.CrcFail+h.Fleet.Total.Dtx+h.Fleet.Total.Skipped,
		h.PredictedShed, h.MeasuredShed,
		h.P50, h.P90, h.P99, h.P999, h.Max)
}

// cellHarness is one cell's replaying generator.
//
// The replay ring (frames) retains every frame newer than the cell's
// stable sequence — the horizon the coordinator's last checkpoint
// covers — even after its terminal ack: KPI counts recorded after the
// checkpoint die with a crashing worker, and only a replay of those
// acked-but-unstable frames restores them (the deterministic admission
// re-admits each exactly once). Frames at or below the stable horizon
// are trimmed once acked.
type cellHarness struct {
	cfg    HarnessConfig
	cellID uint16
	disp   *sched.Dispatcher

	conn      net.Conn
	frames    map[int64][]byte // replay ring: seq > stable, or unacked
	sendNs    map[int64]int64
	acked     map[int64]bool
	unackedN int
	lastTrim int64 // stable horizon the ring was last trimmed to

	stats     HarnessStats
	latencies []int64
	err       error
}

// RunHarness drives the fleet and returns the aggregated stats. The
// per-cell generators are joined before aggregation; the first cell
// error is returned (partial stats intact).
//
//ltephy:spawn-point — one generator per cell, wg.Add before each spawn,
// deferred Done, wg.Wait joins all.
func RunHarness(cfg HarnessConfig) (HarnessStats, error) {
	if cfg.Coordinator == nil {
		return HarnessStats{}, errors.New("fleet: harness needs a Coordinator")
	}
	if cfg.Cells <= 0 {
		cfg.Cells = 1
	}
	if cfg.Subframes <= 0 {
		cfg.Subframes = 1
	}
	if cfg.Load <= 0 {
		cfg.Load = 1
	}
	if cfg.SubframesPerDay <= 0 {
		cfg.SubframesPerDay = cfg.Subframes
		if cfg.SubframesPerDay < 24 {
			cfg.SubframesPerDay = 24
		}
	}
	if cfg.FloorLoad <= 0 {
		cfg.FloorLoad = 0.05
	}
	if cfg.PeakLoad <= 0 {
		cfg.PeakLoad = 0.6
	}
	if cfg.MaxUsers <= 0 || cfg.MaxUsers > fronthaul.MaxUsersPerFrame {
		cfg.MaxUsers = fronthaul.MaxUsersPerFrame
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.CacheSets <= 0 {
		cfg.CacheSets = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.TX.Receiver.Antennas == 0 {
		cfg.TX = tx.DefaultConfig()
	}

	disp := sched.NewDispatcher(sched.DispatcherConfig{
		Delta:     time.Millisecond,
		TX:        cfg.TX,
		CacheSets: cfg.CacheSets,
		Seed:      cfg.Seed,
	})

	gens := make([]*cellHarness, cfg.Cells)
	var wg sync.WaitGroup
	for c := range gens {
		g := &cellHarness{
			cfg:      cfg,
			cellID:   uint16(c),
			disp:     disp,
			frames:   map[int64][]byte{},
			sendNs:   map[int64]int64{},
			acked:    map[int64]bool{},
			lastTrim: -1,
		}
		gens[c] = g
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.err = g.run()
		}()
	}
	wg.Wait()

	var total HarnessStats
	var lats []int64
	var firstErr error
	for _, g := range gens {
		total.Sent += g.stats.Sent
		total.Replayed += g.stats.Replayed
		total.Reconnects += g.stats.Reconnects
		total.Done += g.stats.Done
		total.ShedOverload += g.stats.ShedOverload
		total.ShedBackpressure += g.stats.ShedBackpressure
		total.Duplicate += g.stats.Duplicate
		total.UsersSent += g.stats.UsersSent
		total.UsersAccepted += g.stats.UsersAccepted
		total.UsersDTX += g.stats.UsersDTX
		total.BadAcks += g.stats.BadAcks
		total.Lost += int64(g.unackedN)
		lats = append(lats, g.latencies...)
		if g.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cell %d: %w", g.cellID, g.err)
		}
	}
	total.P50, total.P90, total.P99, total.P999, total.Max = harnessPercentiles(lats)

	// Fleet rollups: scrape every worker's /fetch and fold, then derive
	// the predicted vs measured shed fractions from the serving stats.
	if fleet, err := scrapeFleetKPI(cfg.Coordinator); err == nil {
		total.Fleet = fleet
	} else if firstErr == nil {
		firstErr = err
	}
	if stats, err := cfg.Coordinator.Stats(); err == nil {
		var offered, admitted, overBudget float64
		for _, st := range stats {
			offered += st.OfferedEst
			admitted += st.AdmittedEst
			// GrantedEst is the budget admission actually credited to the
			// cell (burst + clamped refills); offered activity beyond it is
			// the shed the estimator predicted. Checkpoints carry all three
			// counters, so the rollup is exact across migrations and
			// crash-restores.
			if over := st.OfferedEst - st.GrantedEst; over > 0 {
				overBudget += over
			}
		}
		if offered > 0 {
			total.PredictedShed = overBudget / offered
			total.MeasuredShed = 1 - admitted/offered
		}
	} else if firstErr == nil {
		firstErr = err
	}
	return total, firstErr
}

// run sends this cell's subframes with replay-until-terminal-ack
// delivery.
func (g *cellHarness) run() error {
	defer func() {
		if g.conn != nil {
			g.conn.Close()
		}
	}()
	deadline := time.Now().Add(g.cfg.Timeout)
	model, err := params.NewDiurnal(g.cfg.Seed+uint64(g.cellID), g.cfg.SubframesPerDay,
		g.cfg.FloorLoad, g.cfg.PeakLoad)
	if err != nil {
		return err
	}
	var dtxRng *rng.RNG
	if g.cfg.DTXProb > 0 {
		dtxRng = rng.New(g.cfg.Seed + uint64(g.cellID)*7919)
	}
	var buf []byte
	var users []fronthaul.FrameUser
	var ps []uplink.UserParams
	loadAcc := 0.0
	var ticker *time.Ticker
	if g.cfg.Interval > 0 {
		ticker = time.NewTicker(g.cfg.Interval)
		defer ticker.Stop()
	}
	for seq := int64(0); seq < int64(g.cfg.Subframes); seq++ {
		// Offered users: Load diurnal draws concatenated (fractions
		// alternate), exactly like the loopback generator's -load.
		draws := int(g.cfg.Load)
		loadAcc += g.cfg.Load - float64(draws)
		if loadAcc >= 1 {
			draws++
			loadAcc--
		}
		if draws < 1 {
			draws = 1
		}
		ps = ps[:0]
		for d := 0; d < draws; d++ {
			for _, p := range model.Next() {
				if g.cfg.MaxPRB > 0 && p.PRB > g.cfg.MaxPRB {
					p.PRB = g.cfg.MaxPRB
				}
				if len(ps) < g.cfg.MaxUsers {
					ps = append(ps, p)
				}
			}
		}
		for i := range ps {
			ps[i].ID = i
		}
		sf, err := g.disp.Subframe(seq, ps)
		if err != nil {
			return err
		}
		users = users[:0]
		for slot, u := range sf.Users {
			prio := uint8(0)
			if slot < 255 {
				prio = uint8(255 - slot)
			}
			fu := fronthaul.FrameUser{Data: u, Priority: prio}
			if dtxRng != nil && dtxRng.Float64() < g.cfg.DTXProb {
				fu.DTX = true
				g.stats.UsersDTX++
			}
			users = append(users, fu)
		}
		buf, err = fronthaul.AppendFrame(nil, g.cellID, seq, users)
		if err != nil {
			return err
		}
		g.frames[seq] = buf
		g.sendNs[seq] = obs.Nanotime()
		g.unackedN++
		g.stats.Sent++
		g.stats.UsersSent += int64(len(users))
		if err := g.write(buf, deadline); err != nil {
			return err
		}
		if g.cfg.OnSeq != nil && g.cellID == 0 {
			g.cfg.OnSeq(seq)
		}
		g.trim()
		// Drain whatever acks are ready; block only when the window is
		// full.
		if err := g.drainAcks(deadline, g.unackedN >= g.cfg.Window); err != nil {
			return err
		}
		if ticker != nil {
			<-ticker.C
		}
	}
	// Tail: collect terminal acks for everything still in flight.
	for g.unackedN > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: %d subframes unacked at timeout", g.unackedN)
		}
		if err := g.drainAcks(deadline, true); err != nil {
			return err
		}
	}
	return nil
}

// trim retires acked frames the stable horizon covers: a crash-restore
// resumes at the checkpointed sequence, so nothing at or below it will
// ever need replaying again.
func (g *cellHarness) trim() {
	stable := g.cfg.Coordinator.StableSeq(int(g.cellID))
	if stable <= g.lastTrim {
		return
	}
	g.lastTrim = stable
	for seq := range g.frames {
		if seq <= stable && g.acked[seq] {
			delete(g.frames, seq)
			delete(g.sendNs, seq)
		}
	}
}

// write sends one frame, reconnecting (with replay) as needed.
func (g *cellHarness) write(frame []byte, deadline time.Time) error {
	for {
		if g.conn == nil {
			if err := g.reconnect(deadline); err != nil {
				return err
			}
			continue // reconnect replays everything, including frame
		}
		if _, err := g.conn.Write(frame); err != nil {
			g.dropConn()
			continue
		}
		return nil
	}
}

// dropConn closes the connection; the next write or drain reconnects.
func (g *cellHarness) dropConn() {
	if g.conn != nil {
		g.conn.Close()
		g.conn = nil
	}
}

// reconnect re-resolves the cell's placement, dials its current owner
// and replays every unacknowledged frame in sequence order. Retries
// (the owner may be mid-restart or mid-migration) until deadline.
func (g *cellHarness) reconnect(deadline time.Time) error {
	g.dropConn()
	g.stats.Reconnects++
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: cell %d could not reach its worker before timeout", g.cellID)
		}
		network, addr, _, err := g.cfg.Coordinator.Resolve(int(g.cellID))
		if err == nil {
			var conn net.Conn
			if conn, err = net.DialTimeout(network, addr, time.Second); err == nil {
				g.conn = conn
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Replay the whole retained ring oldest-first: on a restored worker
	// the in-order duplicate detection answers AckDuplicate for
	// everything at or below its checkpointed sequence and re-admits the
	// rest exactly once.
	seqs := make([]int64, 0, len(g.frames))
	for seq := range g.frames {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		if _, err := g.conn.Write(g.frames[seq]); err != nil {
			g.dropConn()
			return nil // next write/drain retries the whole cycle
		}
		g.stats.Replayed++
	}
	return nil
}

// drainAcks consumes available acks. When block is true it waits (in
// short read-deadline slices so worker crashes are noticed) until the
// window has room again; otherwise it polls and returns.
func (g *cellHarness) drainAcks(deadline time.Time, block bool) error {
	var buf [fronthaul.AckLen]byte
	for {
		if !block && g.unackedN == 0 {
			return nil
		}
		if g.conn == nil {
			if err := g.reconnect(deadline); err != nil {
				return err
			}
		}
		wait := 5 * time.Millisecond
		if block {
			wait = 200 * time.Millisecond
		}
		_ = g.conn.SetReadDeadline(time.Now().Add(wait))
		_, err := io.ReadFull(g.conn, buf[:])
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if !block || g.unackedN < g.cfg.Window {
					return nil
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("fleet: cell %d window stalled (%d unacked)", g.cellID, g.unackedN)
				}
				continue
			}
			// Connection died mid-stream (worker crash): reconnect and
			// replay on the next loop.
			g.dropConn()
			continue
		}
		a, perr := fronthaul.ParseAck(&buf)
		if perr != nil || a.Cell != g.cellID {
			g.stats.BadAcks++
			continue
		}
		g.handleAck(a)
		if block && g.unackedN < g.cfg.Window {
			block = false
		}
	}
}

// handleAck applies one ack. The first terminal ack per sequence wins
// (later echoes from replays are ignored); redirects are not terminal
// and trigger re-resolution.
func (g *cellHarness) handleAck(a fronthaul.Ack) {
	if a.Seq < 0 || a.Seq >= int64(g.cfg.Subframes) {
		g.stats.BadAcks++
		return
	}
	if a.Status == fronthaul.AckRedirect {
		// Not terminal: the owner is draining or changed. Reconnect (and
		// replay) against the refreshed placement.
		g.dropConn()
		return
	}
	if g.acked[a.Seq] {
		return // replay echo; the first terminal ack already counted
	}
	switch a.Status {
	case fronthaul.AckDone:
		g.stats.Done++
		g.stats.UsersAccepted += int64(a.UsersAccepted)
		g.latencies = append(g.latencies, obs.Nanotime()-g.sendNs[a.Seq])
	case fronthaul.AckShedOverload, fronthaul.AckShedLate:
		g.stats.ShedOverload++
	case fronthaul.AckShedBackpressure:
		g.stats.ShedBackpressure++
	case fronthaul.AckDuplicate:
		// The original ack was lost with its connection, but the subframe
		// was processed — delivery is complete, just not measurable for
		// latency.
		g.stats.Duplicate++
	default:
		g.stats.BadAcks++
		return
	}
	g.acked[a.Seq] = true
	g.unackedN--
}

// scrapeFleetKPI fetches every worker's /fetch snapshot and aggregates.
func scrapeFleetKPI(co *Coordinator) (kpi.FleetFetch, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	var perWorker [][]kpi.CellFetch
	for i := 0; i < co.cfg.Workers; i++ {
		w, err := co.Worker(i)
		if err != nil {
			continue // a dead worker has nothing to scrape
		}
		url := w.FetchURL()
		if url == "" {
			return kpi.FleetFetch{}, fmt.Errorf("fleet: worker %d has no metrics endpoint to scrape", i)
		}
		resp, err := client.Get(url + "/fetch")
		if err != nil {
			return kpi.FleetFetch{}, fmt.Errorf("fleet: scrape worker %d: %w", i, err)
		}
		var doc struct {
			Cells []kpi.CellFetch `json:"cells"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return kpi.FleetFetch{}, fmt.Errorf("fleet: parse worker %d /fetch: %w", i, err)
		}
		perWorker = append(perWorker, doc.Cells)
	}
	return kpi.AggregateCells(perWorker...), nil
}

// harnessPercentiles mirrors the loopback generator's percentile shape.
func harnessPercentiles(lats []int64) (p50, p90, p99, p999, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return time.Duration(lats[i])
	}
	return at(0.50), at(0.90), at(0.99), at(0.999), time.Duration(lats[len(lats)-1])
}
