package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ltephy/internal/fronthaul"
)

// testServerConfig is the worker template the fleet tests share: KPI
// recording on (the reconcile asserts need it), generous deadline, flat
// predictor with enough capacity that nominal load sheds nothing.
func testServerConfig() fronthaul.Config {
	return fronthaul.Config{
		Workers:        2,
		Pools:          1,
		Delta:          time.Millisecond,
		DeadlineBudget: time.Minute,
		Predictor:      fronthaul.FlatPredictor{PerPRB: 1e-3},
		Capacity:       1,
		KPISampling:    1,
		Seed:           7,
	}
}

// newTestFleet brings up an in-process fleet and registers cleanup.
func newTestFleet(t *testing.T, workers, cells int, cfg Config) *Coordinator {
	t.Helper()
	l := &InProcLauncher{Cfg: InProcConfig{Server: testServerConfig(), Cells: cells, Metrics: true}}
	cfg.Workers = workers
	cfg.Cells = cells
	cfg.Launcher = l
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 25 * time.Millisecond
	}
	if cfg.BackoffMin == 0 {
		cfg.BackoffMin = 10 * time.Millisecond
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	cfg.Logf = t.Logf
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(func() { co.Close(); l.Close() })
	return co
}

// TestFleetHarnessExactlyOnce is the fleet acceptance test: 2 workers x
// 4 cells under the diurnal harness, with a live migration AND a forced
// worker crash mid-run. Zero subframes lost, and the fleet KPI rollup
// accounts for every offered user exactly once.
func TestFleetHarnessExactlyOnce(t *testing.T) {
	const (
		workers   = 2
		cells     = 4
		subframes = 50
	)
	co := newTestFleet(t, workers, cells, Config{})

	// Cell 0's generator fires the fault injections at fixed sequences:
	// a live migration of cell 2 (worker 0 -> 1) a third of the way in,
	// then a checkpoint round followed by a hard kill of worker 0.
	onSeq := func(seq int64) {
		switch seq {
		case 15:
			if err := co.Migrate(2, 1); err != nil {
				t.Errorf("Migrate(2, 1): %v", err)
			}
		case 35:
			if err := co.CheckpointRound(); err != nil {
				t.Errorf("CheckpointRound: %v", err)
			}
			w, err := co.Worker(0)
			if err != nil {
				t.Errorf("Worker(0): %v", err)
				return
			}
			w.Kill()
		}
	}

	stats, err := RunHarness(HarnessConfig{
		Coordinator: co,
		Cells:       cells,
		Subframes:   subframes,
		Load:        1.5,
		Seed:        7,
		MaxPRB:      2,
		DTXProb:     0.1,
		OnSeq:       onSeq,
	})
	if err != nil {
		t.Fatalf("RunHarness: %v\n%s", err, stats)
	}
	t.Logf("harness: %s", stats)

	if stats.Lost != 0 {
		t.Fatalf("lost %d subframes: %s", stats.Lost, stats)
	}
	if stats.BadAcks != 0 {
		t.Fatalf("bad acks: %s", stats)
	}
	if want := int64(cells * subframes); stats.Sent != want {
		t.Fatalf("sent %d subframes, want %d", stats.Sent, want)
	}
	if stats.Done+stats.ShedOverload+stats.ShedBackpressure+stats.Duplicate != stats.Sent {
		t.Fatalf("terminal acks do not cover every subframe: %s", stats)
	}
	// The crash forces reconnects and replays; the drained source forces
	// redirects that surface as replays too.
	if stats.Reconnects == 0 || stats.Replayed == 0 {
		t.Fatalf("fault injection left no trace (reconnects=%d replayed=%d)",
			stats.Reconnects, stats.Replayed)
	}

	// Exactly-once: every offered user is in exactly one KPI bucket,
	// across a migration and a crash-restore.
	total := stats.Fleet.Total
	if got := total.CrcPass + total.CrcFail + total.Dtx + total.Skipped; got != stats.UsersSent {
		t.Fatalf("KPI sum %d != users sent %d (pass=%d fail=%d dtx=%d skipped=%d)",
			got, stats.UsersSent, total.CrcPass, total.CrcFail, total.Dtx, total.Skipped)
	}
	if total.Dtx != stats.UsersDTX {
		t.Fatalf("KPI dtx %d != generator dtx %d", total.Dtx, stats.UsersDTX)
	}

	// The migration stuck.
	if p := co.Placement(); p.Owner[2] != 1 {
		t.Fatalf("cell 2 owned by worker %d after migration, want 1", p.Owner[2])
	}
	if p := co.Placement(); p.Epoch == 0 {
		t.Fatalf("placement epoch never advanced")
	}

	// The summary line carries the fields the CI smoke job greps.
	line := stats.String()
	for _, key := range []string{"sent=", "lost=", "kpi_total=", "predicted_shed=", "measured_shed=", "p999="} {
		if !strings.Contains(line, key) {
			t.Fatalf("summary line missing %q: %s", key, line)
		}
	}
}

// TestFleetHarnessDeterministicDelivery: two identical runs (no fault
// injection) deliver identical subframe and user accounting.
func TestFleetHarnessDeterministicDelivery(t *testing.T) {
	run := func() HarnessStats {
		co := newTestFleet(t, 2, 4, Config{})
		stats, err := RunHarness(HarnessConfig{
			Coordinator: co,
			Cells:       4,
			Subframes:   30,
			Load:        1,
			Seed:        11,
			MaxPRB:      2,
			DTXProb:     0.2,
		})
		if err != nil {
			t.Fatalf("RunHarness: %v", err)
		}
		co.Close()
		return stats
	}
	a, b := run(), run()
	if a.Sent != b.Sent || a.UsersSent != b.UsersSent || a.UsersDTX != b.UsersDTX ||
		a.Done != b.Done || a.ShedOverload != b.ShedOverload {
		t.Fatalf("runs diverged:\n  %s\n  %s", a, b)
	}
	if a.Fleet.Total != b.Fleet.Total {
		t.Fatalf("fleet KPI diverged:\n  %+v\n  %+v", a.Fleet.Total, b.Fleet.Total)
	}
}

// TestCheckpointLoopDuringMigration: background checkpoint rounds race
// live migrations of the same cell (the lte-fleet deployment shape when
// both -checkpoint-every and -rebalance-every are set). The per-cell
// migration mutex must keep each drain/checkpoint/resume sequence
// atomic: no subframe lost, exactly-once KPI accounting, and the
// retained snapshot must hold real admission state — a checkpoint of
// the released cell on the old owner would overwrite it with scratch
// state and resume the cell where it no longer lives.
func TestCheckpointLoopDuringMigration(t *testing.T) {
	const (
		workers   = 2
		cells     = 4
		subframes = 60
	)
	co := newTestFleet(t, workers, cells, Config{CheckpointInterval: 5 * time.Millisecond})

	// Ping-pong cell 2 between the workers while the checkpoint loop runs.
	onSeq := func(seq int64) {
		if seq%10 != 5 {
			return
		}
		to := int((seq / 10) % 2)
		if err := co.Migrate(2, to); err != nil {
			t.Errorf("Migrate(2, %d) at seq %d: %v", to, seq, err)
		}
	}
	stats, err := RunHarness(HarnessConfig{
		Coordinator: co,
		Cells:       cells,
		Subframes:   subframes,
		Load:        1.5,
		Seed:        13,
		MaxPRB:      2,
		DTXProb:     0.1,
		OnSeq:       onSeq,
	})
	if err != nil {
		t.Fatalf("RunHarness: %v\n%s", err, stats)
	}
	t.Logf("harness: %s", stats)
	if stats.Lost != 0 {
		t.Fatalf("lost %d subframes: %s", stats.Lost, stats)
	}
	if stats.BadAcks != 0 {
		t.Fatalf("bad acks: %s", stats)
	}
	total := stats.Fleet.Total
	if got := total.CrcPass + total.CrcFail + total.Dtx + total.Skipped; got != stats.UsersSent {
		t.Fatalf("KPI sum %d != users sent %d (pass=%d fail=%d dtx=%d skipped=%d)",
			got, stats.UsersSent, total.CrcPass, total.CrcFail, total.Dtx, total.Skipped)
	}
	// The migrated cell's retained snapshot must carry live admission
	// state, not the zeroed state of a released cell.
	snap := co.Snapshot(2)
	if snap == nil {
		t.Fatalf("no retained snapshot for the migrated cell")
	}
	ck, err := fronthaul.DecodeCheckpoint(snap)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !ck.Admission.Started {
		t.Fatalf("retained snapshot for cell 2 holds scratch admission state")
	}
}

// flakyLauncher delegates to an InProcLauncher but fails each slot's
// first relaunch, exercising restart's retry loop: a failed launch
// (e.g. a failed checkpoint Restore) must consume a backoff credit and
// retry, not abandon the slot.
type flakyLauncher struct {
	inner *InProcLauncher

	mu       sync.Mutex
	launches map[int]int
}

func (l *flakyLauncher) Launch(index int) (Worker, error) {
	l.mu.Lock()
	n := l.launches[index]
	l.launches[index]++
	l.mu.Unlock()
	if n == 1 {
		return nil, errors.New("injected relaunch failure")
	}
	return l.inner.Launch(index)
}

// TestRestartRetriesFailedRelaunch: worker 0 is killed, its first
// relaunch fails, and supervision still brings it back on the next
// backoff attempt.
func TestRestartRetriesFailedRelaunch(t *testing.T) {
	inner := &InProcLauncher{Cfg: InProcConfig{Server: testServerConfig(), Cells: 2, Metrics: true}}
	l := &flakyLauncher{inner: inner, launches: map[int]int{}}
	co, err := New(Config{
		Workers:        2,
		Cells:          2,
		Launcher:       l,
		HealthInterval: 25 * time.Millisecond,
		BackoffMin:     10 * time.Millisecond,
		DrainTimeout:   5 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(func() { co.Close(); inner.Close() })

	w0, err := co.Worker(0)
	if err != nil {
		t.Fatalf("Worker(0): %v", err)
	}
	w0.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if w, err := co.Worker(0); err == nil && w != w0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker 0 never came back after the failed relaunch")
		}
		time.Sleep(10 * time.Millisecond)
	}
	l.mu.Lock()
	launches := l.launches[0]
	l.mu.Unlock()
	if launches != 3 {
		t.Fatalf("worker 0 launched %d times, want 3 (initial + failed relaunch + retry)", launches)
	}
}

// TestCoordinatorRestartRestoresCells: kill a worker with no traffic in
// flight; supervision relaunches it and the placement still resolves.
func TestCoordinatorRestartRestoresCells(t *testing.T) {
	co := newTestFleet(t, 2, 4, Config{})
	w0, err := co.Worker(0)
	if err != nil {
		t.Fatalf("Worker(0): %v", err)
	}
	epoch0 := co.Placement().Epoch
	w0.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		w, err := co.Worker(0)
		if err == nil && w != w0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker 0 never restarted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, _, err := co.Resolve(0); err != nil {
		// The swap may race the resolve by a beat; retry briefly.
		time.Sleep(100 * time.Millisecond)
		if _, _, _, err := co.Resolve(0); err != nil {
			t.Fatalf("Resolve after restart: %v", err)
		}
	}
	if co.Placement().Epoch == epoch0 {
		t.Fatalf("restart did not advance the placement epoch")
	}
}

// TestRebalanceOnceMoves: with every cell on worker 0 and real scraped
// load, RebalanceOnce migrates at least one cell to worker 1.
func TestRebalanceOnceMoves(t *testing.T) {
	co := newTestFleet(t, 2, 2, Config{})
	// Both cells start round-robin (0->0, 1->1); move cell 1 back to
	// worker 0 so the load is fully skewed.
	if err := co.Migrate(1, 0); err != nil {
		t.Fatalf("Migrate(1, 0): %v", err)
	}
	// Offer traffic so the scraped activity is nonzero.
	stats, err := RunHarness(HarnessConfig{
		Coordinator: co,
		Cells:       2,
		Subframes:   20,
		Load:        1,
		Seed:        3,
		MaxPRB:      2,
	})
	if err != nil {
		t.Fatalf("RunHarness: %v", err)
	}
	if stats.Lost != 0 {
		t.Fatalf("lost subframes before rebalance: %s", stats)
	}
	moves, err := co.RebalanceOnce(1, 0.01, 0.5)
	if err != nil {
		t.Fatalf("RebalanceOnce: %v", err)
	}
	if len(moves) != 1 || moves[0].To != 1 {
		t.Fatalf("moves = %v, want one move to worker 1", moves)
	}
	if p := co.Placement(); p.Owner[moves[0].Cell] != 1 {
		t.Fatalf("placement not updated by rebalance: %v", p.Owner)
	}
}
