package cost

import (
	"testing"

	"ltephy/internal/phy/fft"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

const (
	workers   = 62
	periodSec = 0.005 // the paper's 5 ms dispatch period on the TILEPro64
)

func maxUser() uplink.UserParams {
	return uplink.UserParams{PRB: 200, Layers: 4, Mod: modulation.QAM64}
}

func minUser() uplink.UserParams {
	return uplink.UserParams{PRB: 200, Layers: 1, Mod: modulation.QPSK}
}

// TestFFTOpsTracksPlanOps pins the relationship the workload model's
// comment asserts: the smooth 8*n*log2(n) model stays within a small
// constant factor of the iterative engine's true stage-based Plan.Ops()
// across the smooth LTE lengths, so the deliberate smoothing only irons
// out the Bluestein cliff, not the growth rate the Fig. 11 fit relies on.
func TestFFTOpsTracksPlanOps(t *testing.T) {
	for _, nPRB := range []int{2, 4, 8, 16, 25, 50, 100, 200} {
		n := 12 * nPRB
		model := fftOps(n)
		plan := fft.Get(n).Ops()
		if ratio := model / plan; ratio < 0.5 || ratio > 3 {
			t.Errorf("n=%d: model %g vs Plan.Ops %g (ratio %.2f outside [0.5, 3])",
				n, model, plan, ratio)
		}
	}
}

// TestCalibrationOperatingPoint pins the scale the whole power study rests
// on: the maximum single user saturates ~95% of 62 workers at the 5 ms
// period (Fig. 11 top curve / Fig. 12 peak), and the lightest full-pool
// configuration sits just above 10% (the paper's reported minimum).
func TestCalibrationOperatingPoint(t *testing.T) {
	m := Default()
	capacity := float64(workers) * m.PeriodCycles(periodSec)
	maxAct := m.UserCycles(maxUser(), uplink.DefaultAntennas) / capacity
	if maxAct < 0.88 || maxAct > 1.0 {
		t.Errorf("max-config activity = %.3f, want ~0.95", maxAct)
	}
	minAct := m.UserCycles(minUser(), uplink.DefaultAntennas) / capacity
	if minAct < 0.08 || minAct > 0.2 {
		t.Errorf("min-config activity = %.3f, want ~0.12", minAct)
	}
	ratio := maxAct / minAct
	if ratio < 5 || ratio > 12 {
		t.Errorf("max/min workload ratio = %.1f, Fig. 11 spread is ~8-10x", ratio)
	}
}

// TestNearLinearInPRB supports the estimator's linear fit (Eq. 3): cost
// per PRB varies by less than 20% from 20 to 200 PRBs (FFT log factors and
// fixed overheads bend it slightly; the paper's measurements are also only
// approximately linear).
func TestNearLinearInPRB(t *testing.T) {
	m := Default()
	for _, layers := range []int{1, 4} {
		for _, mod := range []modulation.Scheme{modulation.QPSK, modulation.QAM64} {
			lo := m.UserCycles(uplink.UserParams{PRB: 20, Layers: layers, Mod: mod}, 4) / 20
			hi := m.UserCycles(uplink.UserParams{PRB: 200, Layers: layers, Mod: mod}, 4) / 200
			ratio := hi / lo
			if ratio < 0.75 || ratio > 1.35 {
				t.Errorf("layers=%d mod=%v: per-PRB cost ratio 200PRB/20PRB = %.2f; too nonlinear",
					layers, mod, ratio)
			}
		}
	}
}

// TestOrdering verifies the 12 Fig. 11 curves stack correctly: more layers
// and higher-order modulation always cost more.
func TestOrdering(t *testing.T) {
	m := Default()
	mods := []modulation.Scheme{modulation.QPSK, modulation.QAM16, modulation.QAM64}
	for _, prb := range []int{10, 100, 200} {
		var prev float64
		for _, mod := range mods {
			for layers := 1; layers <= 4; layers++ {
				c := m.UserCycles(uplink.UserParams{PRB: prb, Layers: layers, Mod: mod}, 4)
				if layers > 1 {
					lighter := m.UserCycles(uplink.UserParams{PRB: prb, Layers: layers - 1, Mod: mod}, 4)
					if c <= lighter {
						t.Errorf("PRB=%d mod=%v: %d layers (%.0f) not costlier than %d (%.0f)",
							prb, mod, layers, c, layers-1, lighter)
					}
				}
				_ = prev
			}
			c1 := m.UserCycles(uplink.UserParams{PRB: prb, Layers: 1, Mod: mod}, 4)
			if c1 <= prev {
				t.Errorf("PRB=%d: %v single-layer cost %.0f not above previous modulation %.0f",
					prb, mod, c1, prev)
			}
			prev = c1
		}
	}
}

func TestMonotoneInPRB(t *testing.T) {
	m := Default()
	prev := 0.0
	for prb := 2; prb <= 200; prb += 2 {
		c := m.UserCycles(uplink.UserParams{PRB: prb, Layers: 2, Mod: modulation.QAM16}, 4)
		if c <= prev {
			t.Fatalf("cost not increasing at PRB=%d", prb)
		}
		prev = c
	}
}

func TestTurboFullCostsMore(t *testing.T) {
	m := Default()
	full := Default()
	full.TurboFull = true
	p := uplink.UserParams{PRB: 50, Layers: 2, Mod: modulation.QAM16}
	if full.UserCycles(p, 4) <= m.UserCycles(p, 4) {
		t.Error("full turbo decode not costlier than pass-through")
	}
	moreIters := full
	moreIters.TurboIterations = 10
	if moreIters.UserCycles(p, 4) <= full.UserCycles(p, 4) {
		t.Error("more turbo iterations not costlier")
	}
}

func TestSubframeCyclesSums(t *testing.T) {
	m := Default()
	users := []uplink.UserParams{
		{PRB: 10, Layers: 1, Mod: modulation.QPSK},
		{PRB: 20, Layers: 2, Mod: modulation.QAM16},
	}
	want := m.UserCycles(users[0], 4) + m.UserCycles(users[1], 4)
	if got := m.SubframeCycles(users, 4); got != want {
		t.Errorf("SubframeCycles = %g, want %g", got, want)
	}
	if got := m.SubframeCycles(nil, 4); got != 0 {
		t.Errorf("empty subframe cost = %g", got)
	}
}

func TestValidate(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	m.CyclesPerOp = 0
	if err := m.Validate(); err == nil {
		t.Error("zero CyclesPerOp accepted")
	}
}

func TestPeriodCycles(t *testing.T) {
	m := Default()
	if got := m.PeriodCycles(0.005); got != 0.005*DefaultCoreHz {
		t.Errorf("PeriodCycles(5ms) = %g", got)
	}
}

func BenchmarkUserCycles(b *testing.B) {
	m := Default()
	p := maxUser()
	for i := 0; i < b.N; i++ {
		m.UserCycles(p, 4)
	}
}
