// Package cost is the cycle-cost model for the TILEPro64-substitute
// simulator: it maps each benchmark kernel to an estimated cycle count on
// one 700 MHz tile, mirroring the true algorithmic op counts of the
// kernels in internal/uplink.
//
// The absolute scale (CyclesPerOp) is calibrated so that the paper's
// operating point holds: a single maximum user (200 PRB, 4 layers, 64-QAM)
// run at the 5 ms dispatch period keeps 62 workers ~95% busy — the top
// curve of Fig. 11 and the peak of Fig. 12. The relative weights make the
// lightest configuration (200 PRB, 1 layer, QPSK) land near 12% activity,
// matching the paper's "minimum activity above 10%".
package cost

import (
	"fmt"
	"math"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

// Default TILEPro64-substitute parameters (DESIGN.md §6).
const (
	// DefaultCoreHz is the simulated tile clock.
	DefaultCoreHz = 700e6
	// DefaultCyclesPerOp converts model "ops" (roughly scalar flops on
	// complex data) to tile cycles; the TILEPro has no hardware floating
	// point, so several cycles per scalar op is plausible, but this value
	// is a calibration constant, not a microarchitectural claim.
	DefaultCyclesPerOp = 0.907
	// DefaultTaskOverhead is the scheduling cost charged per task pickup
	// (deque/steal traffic), in cycles (~3 us at 700 MHz).
	DefaultTaskOverhead = 2000
	// DefaultUserOverhead is charged once per user job (dequeue from the
	// global queue, job setup).
	DefaultUserOverhead = 6000
)

// fftOps models a production transform kernel with a uniform ~8*n*log2(n)
// cost for every length. The native receiver's iterative stage-planned
// engine (internal/phy/fft) reports its true per-stage butterfly cost via
// Plan.Ops() — within a small constant factor of this model on smooth
// lengths (TestFFTOpsTracksPlanOps pins that) — and falls back to
// Bluestein for lengths with large prime factors at ~10x cost. That cliff
// is an artifact of this reproduction — 3GPP restricts DFT-precoding sizes
// to 2/3/5-smooth values and proprietary kernels handle the rest with
// mixed radices — so the simulator's workload model deliberately smooths
// over it rather than calling Plan.Ops(). This keeps Fig. 11's near-linear
// activity-vs-PRB curves, which the paper measured and the estimator's
// linear fit assumes.
func fftOps(n int) float64 {
	if n < 2 {
		return 8
	}
	return 8 * float64(n) * math.Log2(float64(n))
}

// Model converts kernel shapes to cycles.
type Model struct {
	CyclesPerOp  float64
	CoreHz       float64
	TaskOverhead float64 // cycles per task pickup
	UserOverhead float64 // cycles per user job
	// TurboFull switches the backend cost to full max-log-MAP decoding.
	TurboFull bool
	// TurboIterations scales the full-decode cost.
	TurboIterations int
	// TurboHalfIters, when nonzero, prices the decode by the realized
	// half-iteration count instead of the worst-case 2*TurboIterations:
	// CRC-gated early termination usually stops a decode after a fraction
	// of its budget, and a pricing model that charges the full cap
	// systematically over-admits headroom the receiver never uses. Feed it
	// from observed counts (obs.Registry.TurboHist or
	// UserResult.TurboHalfIters EWMAs); fractional values are meaningful.
	TurboHalfIters float64
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		CyclesPerOp:     DefaultCyclesPerOp,
		CoreHz:          DefaultCoreHz,
		TaskOverhead:    DefaultTaskOverhead,
		UserOverhead:    DefaultUserOverhead,
		TurboIterations: 5,
	}
}

// Validate rejects nonsensical parameters.
func (m Model) Validate() error {
	if m.CyclesPerOp <= 0 || m.CoreHz <= 0 {
		return fmt.Errorf("cost: non-positive scale (CyclesPerOp=%g, CoreHz=%g)", m.CyclesPerOp, m.CoreHz)
	}
	return nil
}

// ChanEstTask is the cost of one (antenna, layer) channel-estimation task:
// two slots of matched filter (8 ops/bin), IFFT, windowing (2 ops/bin) and
// FFT.
func (m Model) ChanEstTask(n int) float64 {
	ops := 2 * (8*float64(n) + fftOps(n) + 2*float64(n) + fftOps(n))
	return ops * m.CyclesPerOp
}

// WeightsTask is the per-user serial MMSE weight computation. The model
// assumes an optimised production kernel — structure-exploiting Hermitian
// solve at ~8*(A*L + L^2) ops per subcarrier per slot — rather than our
// reference implementation's full Gram + Gauss-Jordan; the weights step
// must stay a modest serial fraction for the paper's throughput (Fig. 12
// sustains 97% activity) to be reachable.
func (m Model) WeightsTask(n, ant, layers int) float64 {
	a, l := float64(ant), float64(layers)
	perBin := 8 * (a*l + l*l)
	return 2 * float64(n) * perBin * m.CyclesPerOp
}

// DataTask is one (slot, symbol, layer) combining + despread task:
// weight application across antennas plus the inverse transform and
// rescale.
func (m Model) DataTask(n, ant int) float64 {
	ops := float64(n)*float64(ant)*8 + fftOps(n) + 2*float64(n)
	return ops * m.CyclesPerOp
}

// BackendPerBitOps is the per-bit cost of the backend tail (soft demap,
// decode pass-through, CRC). Its value is fitted to the paper's measured
// Fig. 11 rather than derived from instruction counts: the twelve
// activity-vs-PRB curves fan out evenly with a 9.5x spread between
// (1 layer, QPSK) and (4 layers, 64-QAM), which — given that only the
// backend scales with bits-per-symbol — forces the per-bit backend to
// weigh about 1.1x the per-layer transform work. (A cheap per-bit backend
// would compress the modulation spread to the 4x layer factor alone; an
// exhaustive 2^Q demapper would bow the fan convex. The paper's even fan
// is the measurement this model must reproduce.)
const BackendPerBitOps = 285

// BackendTask is the per-user serial tail: symbol deinterleave, soft
// demapping, turbo decoding (pass-through or full max-log-MAP) and CRC.
func (m Model) BackendTask(n, layers int, mod modulation.Scheme) float64 {
	syms := float64(uplink.DataSymbolsPerSubframe * layers * n)
	q := float64(mod.Bits())
	ops := syms*2 + // deinterleave
		syms*q*BackendPerBitOps // demap + decode passthrough + CRC
	if m.TurboFull {
		// Max-log-MAP: per info bit, 8 states x (gamma + alpha + beta +
		// LLR) per half-iteration (one constituent decoder pass); the
		// worst case runs 2*TurboIterations half-iterations, the realized
		// count (when known) is usually far lower. Coded bits ~ 3x info
		// bits.
		info := syms * q / 3
		halves := 2 * float64(m.TurboIterations)
		if m.TurboHalfIters > 0 {
			halves = m.TurboHalfIters
		}
		ops += info * 8 * 16 * halves
	}
	return ops * m.CyclesPerOp
}

// UserCycles totals one user's processing for a subframe, including the
// per-task scheduling overheads — the quantity the workload estimator
// learns to predict from (PRB, layers, modulation).
func (m Model) UserCycles(p uplink.UserParams, antennas int) float64 {
	n := p.Subcarriers()
	nTasks := antennas*p.Layers + uplink.DataSymbolsPerSubframe*p.Layers + 2
	total := m.UserOverhead + float64(nTasks)*m.TaskOverhead
	total += float64(antennas*p.Layers) * m.ChanEstTask(n)
	total += m.WeightsTask(n, antennas, p.Layers)
	total += float64(uplink.DataSymbolsPerSubframe*p.Layers) * m.DataTask(n, antennas)
	total += m.BackendTask(n, p.Layers, p.Mod)
	return total
}

// SubframeCycles totals a scheduling decision.
func (m Model) SubframeCycles(users []uplink.UserParams, antennas int) float64 {
	var total float64
	for _, p := range users {
		total += m.UserCycles(p, antennas)
	}
	return total
}

// PeriodCycles converts a dispatch period in seconds to tile cycles.
func (m Model) PeriodCycles(periodSec float64) float64 { return periodSec * m.CoreHz }
