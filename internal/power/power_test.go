package power

import (
	"math"
	"testing"

	"ltephy/internal/sim"
	"ltephy/internal/uplink"
)

// synthResult builds a sim.Result by hand: `windows` windows at the given
// busy core-equivalents and active-core counts.
func synthResult(policy sim.Policy, busyCores []float64, activeCores int) *sim.Result {
	cfg := sim.DefaultConfig()
	cfg.Policy = policy
	cfg.WindowSec = 0.1
	if policy.UsesEstimator() {
		cfg.ActiveCores = func(int64, []uplink.UserParams) int { return 0 } // placeholder, unused
	}
	res := &sim.Result{
		Cfg:          cfg,
		WindowCycles: cfg.Cost.PeriodCycles(cfg.WindowSec),
	}
	perWindow := int(cfg.WindowSec / cfg.PeriodSec)
	for _, b := range busyCores {
		res.Busy = append(res.Busy, b*res.WindowCycles)
		res.ActiveCap = append(res.ActiveCap, float64(activeCores)*res.WindowCycles)
		for i := 0; i < perWindow; i++ {
			res.ActiveCores = append(res.ActiveCores, activeCores)
		}
	}
	res.Subframes = len(res.ActiveCores)
	return res
}

func flat(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func noThermal() Params {
	p := Default()
	p.ThermalGain = 0
	return p
}

func TestNONAPPower(t *testing.T) {
	// 31 busy + 31 spinning on top of base.
	res := synthResult(sim.NONAP, flat(3, 31), 62)
	s, err := Series(res, noThermal())
	if err != nil {
		t.Fatal(err)
	}
	p := noThermal()
	want := p.BaseW + 31*p.BusyW + 31*p.SpinW
	for i, v := range s {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("window %d: %g W, want %g", i, v, want)
		}
	}
	// Sanity: close to the paper's 25 W average at 50% load.
	if want < 23 || want > 27 {
		t.Errorf("NONAP at 50%% load = %.1f W, paper reports 25 W", want)
	}
}

// TestPolicyOrderingAtEqualLoad pins the paper's Table I ordering at 50%
// load with a sensible active set: NONAP >> IDLE > NAP(active=33) >
// NAP+IDLE.
func TestPolicyOrderingAtEqualLoad(t *testing.T) {
	p := noThermal()
	get := func(pol sim.Policy, active int) float64 {
		res := synthResult(pol, flat(3, 31), active)
		s, err := Series(res, p)
		if err != nil {
			t.Fatal(err)
		}
		return s[0]
	}
	nonap := get(sim.NONAP, 62)
	idle := get(sim.IDLE, 62)
	nap := get(sim.NAP, 33)
	napIdle := get(sim.NAPIDLE, 33)
	if !(nonap > idle && idle > nap && nap > napIdle) {
		t.Errorf("ordering violated: NONAP=%.2f IDLE=%.2f NAP=%.2f NAP+IDLE=%.2f",
			nonap, idle, nap, napIdle)
	}
	// Paper Table II magnitudes (+-1.5 W tolerance; exact values depend on
	// the sim's emergent spin fractions, recorded in EXPERIMENTS.md).
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"NONAP", nonap, 25}, {"IDLE", idle, 20.7}, {"NAP", nap, 20.5}, {"NAP+IDLE", napIdle, 19.9},
	} {
		if math.Abs(tc.got-tc.want) > 1.5 {
			t.Errorf("%s = %.2f W, paper reports %.1f W", tc.name, tc.got, tc.want)
		}
	}
}

func TestPowerMonotoneInLoad(t *testing.T) {
	p := noThermal()
	for _, pol := range []sim.Policy{sim.NONAP, sim.IDLE} {
		prev := -1.0
		for _, busy := range []float64{5, 15, 30, 45, 60} {
			res := synthResult(pol, flat(1, busy), 62)
			s, err := Series(res, p)
			if err != nil {
				t.Fatal(err)
			}
			if pol == sim.NONAP {
				// NONAP converts spin to busy: small increase.
				if s[0] <= prev {
					t.Errorf("%v: power not increasing with load", pol)
				}
			} else if s[0] <= prev {
				t.Errorf("%v: power not increasing with load", pol)
			}
			prev = s[0]
		}
	}
}

func TestBusyClampedToWorkers(t *testing.T) {
	res := synthResult(sim.NONAP, flat(1, 80), 62) // impossible busy > workers
	s, err := Series(res, noThermal())
	if err != nil {
		t.Fatal(err)
	}
	p := noThermal()
	if s[0] > p.BaseW+62*p.BusyW+1e-9 {
		t.Errorf("power %g exceeds all-busy bound", s[0])
	}
}

func TestThermalFeedback(t *testing.T) {
	p := Default()
	series := flat(100, 26) // hot: well above the 18 W reference
	applyThermal(series, 1.0, p)
	if series[0] >= series[99] {
		t.Error("thermal feedback did not grow over time")
	}
	if series[99] <= 26 {
		t.Error("steady hot power gained no thermal excess")
	}
	cold := flat(100, 15) // below reference: no excess
	applyThermal(cold, 1.0, p)
	for i, v := range cold {
		if v != 15 {
			t.Fatalf("cold window %d changed to %g", i, v)
		}
	}
}

func TestGatingScheduleEquations(t *testing.T) {
	p := Default()
	active := []int{10, 30, 12, 12, 12, 12, 12}
	powered := GatingSchedule(active, p)
	// Subframe 0: window {0,1,2} -> max 30 -> ceil(30/8)*8 = 32.
	if powered[0] != 32 {
		t.Errorf("powered[0] = %d, want 32", powered[0])
	}
	// Subframe 3: window {1..5} -> max 30 -> 32.
	if powered[3] != 32 {
		t.Errorf("powered[3] = %d, want 32", powered[3])
	}
	// Subframe 6: window {4,5,6} -> max 12 -> 16.
	if powered[6] != 16 {
		t.Errorf("powered[6] = %d, want 16", powered[6])
	}
	// Never below one group or above TotalCores.
	low := GatingSchedule([]int{1, 1, 1}, p)
	for _, v := range low {
		if v != p.GateGroup {
			t.Errorf("minimum powered group = %d, want %d", v, p.GateGroup)
		}
	}
	high := GatingSchedule([]int{64, 64}, p)
	for _, v := range high {
		if v != 64 {
			t.Errorf("max powered = %d, want 64", v)
		}
	}
}

func TestGatingSavingsEquations(t *testing.T) {
	p := Default()
	powered := []int{32, 32, 48, 40}
	s := GatingSavings(powered, p)
	// Eq. 9: (64-32)*0.055 - 0 = 1.76.
	if math.Abs(s[0]-1.76) > 1e-9 {
		t.Errorf("savings[0] = %g, want 1.76", s[0])
	}
	// Eq. 8-9: (64-48)*0.055 - 16*0.015 = 0.88 - 0.24 = 0.64.
	if math.Abs(s[2]-0.64) > 1e-9 {
		t.Errorf("savings[2] = %g, want 0.64", s[2])
	}
	// Toggling down also pays the overhead: (64-40)*0.055 - 8*0.015 = 1.2.
	if math.Abs(s[3]-1.2) > 1e-9 {
		t.Errorf("savings[3] = %g, want 1.2", s[3])
	}
}

func TestApplyGatingReducesPower(t *testing.T) {
	res := synthResult(sim.NAPIDLE, flat(4, 20), 30)
	base, err := Series(res, noThermal())
	if err != nil {
		t.Fatal(err)
	}
	gated, err := ApplyGating(base, res, noThermal())
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if gated[i] >= base[i] {
			t.Errorf("window %d: gated %.2f not below %.2f", i, gated[i], base[i])
		}
	}
	// Savings magnitude: active 30 -> powered 32 -> (64-32)*0.055 = 1.76 W.
	if d := base[0] - gated[0]; math.Abs(d-1.76) > 1e-6 {
		t.Errorf("gating saved %.3f W, want 1.76", d)
	}
}

func TestApplyGatingLengthMismatch(t *testing.T) {
	res := synthResult(sim.NAPIDLE, flat(2, 10), 20)
	if _, err := ApplyGating(make([]float64, 5), res, Default()); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := Default()
	bad.IdleWakeDuty = 2
	if err := bad.Validate(); err == nil {
		t.Error("duty > 1 accepted")
	}
	bad = Default()
	bad.GateGroup = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero gate group accepted")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
}

func TestFromWorkerStats(t *testing.T) {
	p := noThermal()
	// Two workers: one fully busy, one fully napping, over 1 s.
	w, err := FromWorkerStats([]int64{1e9, 0}, []int64{0, 1e9}, 1e9, p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.BaseW + p.BusyW + p.NapW + p.NapCheckDuty*(p.SpinW-p.NapW)
	if math.Abs(w-want) > 1e-9 {
		t.Errorf("power = %g, want %g", w, want)
	}
	// A fully spinning worker costs SpinW.
	w2, err := FromWorkerStats([]int64{0}, []int64{0}, 1e9, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2-(p.BaseW+p.SpinW)) > 1e-9 {
		t.Errorf("spin-only power = %g", w2)
	}
	// Fractions clamp instead of exploding on clock skew.
	w3, err := FromWorkerStats([]int64{2e9}, []int64{0}, 1e9, p)
	if err != nil {
		t.Fatal(err)
	}
	if w3 > p.BaseW+p.BusyW+1e-9 {
		t.Errorf("overlong busy not clamped: %g", w3)
	}
	if _, err := FromWorkerStats([]int64{1}, []int64{1, 2}, 1e9, p); err == nil {
		t.Error("mismatched stats accepted")
	}
	if _, err := FromWorkerStats(nil, nil, 0, p); err == nil {
		t.Error("zero wall accepted")
	}
}
