// Package power models the TILEPro64's power dissipation and the paper's
// analytical power-gating study, substituting for the NI USB-6210
// measurement rig (DESIGN.md §2).
//
// The dynamic model assigns each worker core a state-dependent power —
// busy (executing kernels), spinning (searching for work), or napping
// (clock-gated, with a duty-cycled periodic wake) — on top of the paper's
// measured 14 W base. A first-order thermal filter reproduces the
// temperature feedback the paper observes ("the higher average power
// raises the TILEPro64's temperature, which increases power"). Constants
// are calibrated so the four policies' full-trace averages land on the
// paper's Table I/II relationships; EXPERIMENTS.md records both sets of
// numbers.
//
// The static model implements Eqs. 6-9 verbatim: cores power-gated in
// groups of eight, sized by the maximum estimated active cores across a
// five-subframe window, 55 mW static per core, 15 mW toggle overhead.
package power

import (
	"fmt"

	"ltephy/internal/sim"
)

// Params are the model constants.
type Params struct {
	// BaseW is the measured idle-chip power: "the base power when the
	// TILEPro64 chip performs no work is 14 W".
	BaseW float64
	// BusyW/SpinW/NapW are per-core dynamic powers by state (watts).
	BusyW, SpinW, NapW float64
	// NapCheckDuty is the fraction of time a deactivated (proactively
	// napped) core spends awake checking its status flag.
	NapCheckDuty float64
	// IdleWakeDuty is the fraction of time a reactively napping core
	// spends awake polling for stealable work — the overhead that makes
	// IDLE dissipate slightly more than NAP in the paper.
	IdleWakeDuty float64
	// Thermal feedback: extra leakage proportional to how far the
	// low-pass-filtered power sits above ThermalRefW.
	ThermalTauSec float64
	ThermalGain   float64
	ThermalRefW   float64
	// Power gating (Section VI-C).
	CoreStaticW      float64 // 55 mW per core
	ToggleW          float64 // 15 mW per toggled core for one subframe
	GateGroup        int     // cores are gated in groups of eight
	GateWindowAhead  int     // Eq. 7: schedule known two subframes ahead
	GateWindowBehind int     // ... and up to three subframes in flight
	TotalCores       int     // 64 tiles
}

// Default returns the calibrated constants.
func Default() Params {
	return Params{
		BaseW:            14.0,
		BusyW:            0.210,
		SpinW:            0.153,
		NapW:             0.005,
		NapCheckDuty:     0.005,
		IdleWakeDuty:     0.16,
		ThermalTauSec:    40,
		ThermalGain:      0.08,
		ThermalRefW:      18,
		CoreStaticW:      0.055,
		ToggleW:          0.015,
		GateGroup:        8,
		GateWindowAhead:  2,
		GateWindowBehind: 2,
		TotalCores:       64,
	}
}

// Validate rejects nonsensical constants.
func (p Params) Validate() error {
	switch {
	case p.BaseW < 0 || p.BusyW <= 0 || p.SpinW < 0 || p.NapW < 0:
		return fmt.Errorf("power: negative state power")
	case p.NapCheckDuty < 0 || p.NapCheckDuty > 1 || p.IdleWakeDuty < 0 || p.IdleWakeDuty > 1:
		return fmt.Errorf("power: duty cycles must lie in [0,1]")
	case p.GateGroup < 1 || p.TotalCores < 1:
		return fmt.Errorf("power: invalid gating geometry")
	case p.ThermalTauSec <= 0:
		return fmt.Errorf("power: thermal time constant must be positive")
	}
	return nil
}

// deepNapW is the effective power of a proactively deactivated core.
func (p Params) deepNapW() float64 { return p.NapW + p.NapCheckDuty*(p.SpinW-p.NapW) }

// idleNapW is the effective power of a reactively napping core.
func (p Params) idleNapW() float64 { return p.NapW + p.IdleWakeDuty*(p.SpinW-p.NapW) }

// Series converts a simulation result into a per-window power trace
// (watts), including base power and thermal feedback — the model
// counterpart of the paper's 100 ms RMS measurements.
func Series(res *sim.Result, p Params) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, res.Windows())
	w := res.WindowCycles
	workers := float64(res.Cfg.Workers)
	for i := range out {
		busy := res.Busy[i] / w // core-equivalents busy
		if busy > workers {
			busy = workers // backlog draining past the last dispatch
		}
		capacity := workers
		if res.Cfg.Policy.UsesEstimator() {
			capacity = res.ActiveCap[i] / w
		}
		if capacity < busy {
			// Tasks started under a wider mask are still draining; those
			// cores are necessarily awake.
			capacity = busy
		}
		var dyn float64
		switch res.Cfg.Policy {
		case sim.NONAP:
			dyn = busy*p.BusyW + (workers-busy)*p.SpinW
		case sim.IDLE:
			dyn = busy*p.BusyW + (workers-busy)*p.idleNapW()
		case sim.NAP:
			dyn = busy*p.BusyW + (capacity-busy)*p.SpinW + (workers-capacity)*p.deepNapW()
		case sim.NAPIDLE:
			dyn = busy*p.BusyW + (capacity-busy)*p.idleNapW() + (workers-capacity)*p.deepNapW()
		case sim.DVFS:
			// Busy power scales ~f^3 (P ~ C*V^2*f with V ~ f); the
			// simulator pre-weighted busy wall time by f^3. Idle cores nap
			// reactively as under NAP+IDLE.
			busyF3 := res.BusyF3[i] / w
			dyn = busyF3*p.BusyW + (workers-busy)*p.idleNapW()
		default:
			return nil, fmt.Errorf("power: unknown policy %v", res.Cfg.Policy)
		}
		out[i] = p.BaseW + dyn
	}
	applyThermal(out, res.Cfg.WindowSec, p)
	return out, nil
}

// applyThermal adds leakage proportional to the excess of low-pass-
// filtered electrical power over the reference — a first-order stand-in
// for die-temperature-dependent leakage. The filter state starts at the
// reference (cold chip).
func applyThermal(series []float64, windowSec float64, p Params) {
	if p.ThermalGain == 0 {
		return
	}
	filtered := p.ThermalRefW
	alpha := windowSec / p.ThermalTauSec
	if alpha > 1 {
		alpha = 1
	}
	for i, v := range series {
		filtered += alpha * (v - filtered)
		if excess := filtered - p.ThermalRefW; excess > 0 {
			series[i] = v + p.ThermalGain*excess
		}
	}
}

// Mean returns the average of a power series.
func Mean(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	var s float64
	for _, v := range series {
		s += v
	}
	return s / float64(len(series))
}

// GatingSchedule implements Eqs. 6-7: discretise each subframe's estimated
// active cores to gate groups, taking the maximum across the five-subframe
// window (two ahead — the schedule is known in advance — and two behind —
// still in flight).
func GatingSchedule(active []int, p Params) []int {
	powered := make([]int, len(active))
	for i := range active {
		m := 0
		lo := i - p.GateWindowBehind
		hi := i + p.GateWindowAhead
		if lo < 0 {
			lo = 0
		}
		if hi > len(active)-1 {
			hi = len(active) - 1
		}
		for j := lo; j <= hi; j++ {
			if active[j] > m {
				m = active[j]
			}
		}
		g := (m + p.GateGroup - 1) / p.GateGroup * p.GateGroup
		if g > p.TotalCores {
			g = p.TotalCores
		}
		if g < p.GateGroup {
			g = p.GateGroup // the group hosting the maintenance/driver tiles stays on
		}
		powered[i] = g
	}
	return powered
}

// GatingSavings implements Eqs. 8-9 per subframe: static power of the
// gated-off cores minus the toggle overhead.
func GatingSavings(powered []int, p Params) []float64 {
	savings := make([]float64, len(powered))
	for i, on := range powered {
		oh := 0.0
		if i > 0 {
			d := powered[i] - powered[i-1]
			if d < 0 {
				d = -d
			}
			oh = float64(d) * p.ToggleW
		}
		savings[i] = float64(p.TotalCores-on)*p.CoreStaticW - oh
	}
	return savings
}

// ApplyGating subtracts the per-subframe gating savings (aggregated into
// the result's measurement windows) from a power series — how the paper
// derives Fig. 16 from the NAP+IDLE measurement.
func ApplyGating(series []float64, res *sim.Result, p Params) ([]float64, error) {
	if len(series) != res.Windows() {
		return nil, fmt.Errorf("power: series has %d windows, result %d", len(series), res.Windows())
	}
	powered := GatingSchedule(res.ActiveCores, p)
	savings := GatingSavings(powered, p)
	perWindow := res.WindowCycles / res.Cfg.Cost.PeriodCycles(res.Cfg.PeriodSec)
	out := make([]float64, len(series))
	for w := range out {
		lo := int(float64(w) * perWindow)
		hi := int(float64(w+1) * perWindow)
		if hi > len(savings) {
			hi = len(savings)
		}
		var s float64
		n := 0
		for i := lo; i < hi; i++ {
			s += savings[i]
			n++
		}
		if n > 0 {
			s /= float64(n)
		}
		out[w] = series[w] - s
	}
	return out, nil
}

// FromWorkerStats estimates what a native worker-pool run would dissipate
// on the modelled TILEPro64: each worker's busy/nap/spin time fractions
// over the wall-clock window map to the per-core state powers. This lets
// cmd/lte-bench report an as-if power figure for host runs (extension —
// the paper measures only the real chip).
func FromWorkerStats(busyNanos, napNanos []int64, wallNanos int64, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if len(busyNanos) != len(napNanos) || wallNanos <= 0 {
		return 0, fmt.Errorf("power: inconsistent stats (%d busy, %d nap, wall %d)",
			len(busyNanos), len(napNanos), wallNanos)
	}
	total := p.BaseW
	for i := range busyNanos {
		busy := clampFrac(float64(busyNanos[i]) / float64(wallNanos))
		nap := clampFrac(float64(napNanos[i]) / float64(wallNanos))
		if busy+nap > 1 {
			nap = 1 - busy
		}
		spin := 1 - busy - nap
		total += busy*p.BusyW + spin*p.SpinW + nap*p.deepNapW()
	}
	return total, nil
}

func clampFrac(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
