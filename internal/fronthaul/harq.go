package fronthaul

import (
	"fmt"
	"sort"
	"sync"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

// harqLedger is the server-side HARQ soft-buffer store: one
// uplink.HARQProcess per (cell, user) slot, fed from the result hook with
// the soft bits of every CRC-failed transmission. A retransmission
// (wire RV flag != 0) accumulates into the slot's mother buffer; when the
// combined decode verifies, the slot retires and the KPI records the
// block as delivered.
//
// The ledger is what live cell migration checkpoints: mother-buffer
// accumulation is plain float64 addition in a fixed per-user order, so a
// snapshot/restore round trip continues bit-identically on the target
// process (TestMigrationBitIdentity pins this).
//
// Ordering: entries are keyed per user, and LTE's HARQ round trip (8
// subframes) guarantees a user's retransmission never overlaps its
// previous transmission in flight — the generator-side contract this
// ledger inherits. Results of *different* users arrive concurrently from
// worker goroutines; the mutex serialises the map, and per-user order is
// the transport's frame order.
type harqLedger struct {
	cfg uplink.ReceiverConfig

	mu      sync.Mutex
	entries map[uint32]*harqEntry
}

// harqEntry is one user's active soft-buffer slot.
type harqEntry struct {
	params uplink.UserParams
	proc   *uplink.HARQProcess
}

func newHARQLedger(cfg uplink.ReceiverConfig) *harqLedger {
	return &harqLedger{cfg: cfg, entries: map[uint32]*harqEntry{}}
}

func harqKey(cell uint16, user int) uint32 {
	return uint32(cell)<<16 | uint32(user)&0xffff
}

// absorb folds one CRC-failed transmission into the user's soft buffer
// (creating it on a first transmission) and attempts the combined
// decode. It returns the recovered payload when the combined CRC
// verifies, retiring the slot.
//
// Runs on worker goroutines via the result hook — off the ingest hot
// path and only for CRC failures, so allocation here is acceptable.
func (l *harqLedger) absorb(r uplink.UserResult) ([]uint8, bool) {
	if r.SoftBits == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := harqKey(r.Cell, r.UserID)
	e := l.entries[k]
	if r.RV == 0 || e == nil || e.params != r.Params {
		f, err := uplink.NewTransportFormatRate(r.Params, l.cfg.Turbo, l.cfg.CodeRate)
		if err != nil {
			return nil, false
		}
		proc, err := f.NewHARQCfg(l.cfg)
		if err != nil {
			return nil, false
		}
		e = &harqEntry{params: r.Params, proc: proc}
		l.entries[k] = e
	}
	payload, ok, err := e.proc.Absorb(r.SoftBits, int(r.RV))
	if err != nil {
		delete(l.entries, k)
		return nil, false
	}
	if ok {
		delete(l.entries, k)
		return payload, true
	}
	return nil, false
}

// clear retires a user's slot (its block was delivered without
// combining, so any stale soft state is obsolete).
func (l *harqLedger) clear(cell uint16, user int) {
	l.mu.Lock()
	delete(l.entries, harqKey(cell, user))
	l.mu.Unlock()
}

// HARQState is one user's checkpointable soft-buffer state.
type HARQState struct {
	User   int
	PRB    int
	Layers int
	Mod    modulation.Scheme
	Rounds int
	// Mother is the accumulated mother-rate LLR buffer (float64 bits are
	// preserved exactly on the wire, so restore is bit-identical).
	Mother []float64
}

// snapshotCell extracts every active slot of one cell, sorted by user id
// so the snapshot encoding is deterministic.
func (l *harqLedger) snapshotCell(cell uint16) []HARQState {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []HARQState
	for k, e := range l.entries {
		if uint16(k>>16) != cell {
			continue
		}
		out = append(out, HARQState{
			User:   e.params.ID,
			PRB:    e.params.PRB,
			Layers: e.params.Layers,
			Mod:    e.params.Mod,
			Rounds: e.proc.Rounds(),
			Mother: append([]float64(nil), e.proc.Mother()...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// restoreCell installs a cell's checkpointed slots, replacing any
// existing state for that cell. Every entry is built and validated
// before the live map is touched, so a failed restore leaves the
// ledger unchanged rather than with partial cell state.
func (l *harqLedger) restoreCell(cell uint16, states []HARQState) error {
	fresh := make(map[uint32]*harqEntry, len(states))
	for _, st := range states {
		p := uplink.UserParams{ID: st.User, PRB: st.PRB, Layers: st.Layers, Mod: st.Mod}
		f, err := uplink.NewTransportFormatRate(p, l.cfg.Turbo, l.cfg.CodeRate)
		if err != nil {
			return fmt.Errorf("fronthaul: HARQ restore user %d: %w", st.User, err)
		}
		proc, err := f.RestoreHARQCfg(l.cfg, st.Rounds, st.Mother)
		if err != nil {
			return fmt.Errorf("fronthaul: HARQ restore user %d: %w", st.User, err)
		}
		fresh[harqKey(cell, st.User)] = &harqEntry{params: p, proc: proc}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for k := range l.entries {
		if uint16(k>>16) == cell {
			delete(l.entries, k)
		}
	}
	for k, e := range fresh {
		l.entries[k] = e
	}
	return nil
}

// clearCell drops every slot of one cell (migration release).
func (l *harqLedger) clearCell(cell uint16) {
	l.mu.Lock()
	for k := range l.entries {
		if uint16(k>>16) == cell {
			delete(l.entries, k)
		}
	}
	l.mu.Unlock()
}
