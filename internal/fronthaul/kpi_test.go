package fronthaul

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// kpiUserTotals sums the per-user FETCH counters of one cell snapshot.
func kpiUserTotals(t *testing.T, srv *Server, cell int) (pass, fail, dtx, skipped int64) {
	t.Helper()
	for _, u := range srv.KPI().CellSnapshot(cell).Users {
		pass += u.Cumulative.CrcPass
		fail += u.Cumulative.CrcFail
		dtx += u.Cumulative.Dtx
		skipped += u.Cumulative.Skipped
	}
	return
}

// TestKPILoopbackNominalWithDTX runs a nominal-load loopback with DTX
// users mixed in and checks the KPI registry's view against the
// generator's ground truth: every accepted user decodes (CrcPass), every
// DTX-flagged user lands in Dtx, nothing is skipped, and the per-user
// sums equal the cell totals.
func TestKPILoopbackNominalWithDTX(t *testing.T) {
	const subframes = 40
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        2,
		Delta:          time.Millisecond,
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 1e-3},
		Capacity:       1,
		KPISampling:    1,
		KPIWindows:     []int64{8},
		Seed:           7,
	})
	stats, err := RunLoopback(GenConfig{
		Network:   "tcp",
		Addr:      addr,
		Cells:     1,
		Subframes: subframes,
		Load:      1,
		Seed:      7,
		MaxPRB:    2,
		DTXProb:   0.3,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if stats.UsersDTX == 0 {
		t.Fatal("generator flagged no DTX users; DTXProb not exercised")
	}
	// DTX users are compacted out before admission, so accepted + DTX
	// must cover everything sent at nominal load.
	if stats.UsersAccepted+stats.UsersDTX != stats.UsersSent {
		t.Fatalf("accepted %d + dtx %d != sent %d", stats.UsersAccepted, stats.UsersDTX, stats.UsersSent)
	}
	c := srv.KPI().CellSnapshot(0)
	cum := c.Cumulative
	if cum.Dtx != stats.UsersDTX {
		t.Errorf("KPI Dtx = %d, generator sent %d", cum.Dtx, stats.UsersDTX)
	}
	if cum.CrcPass+cum.CrcFail != stats.UsersAccepted {
		t.Errorf("KPI pass+fail = %d, accepted %d", cum.CrcPass+cum.CrcFail, stats.UsersAccepted)
	}
	if cum.Skipped != 0 {
		t.Errorf("KPI Skipped = %d at nominal load, want 0", cum.Skipped)
	}
	if cum.CrcFail != 0 {
		t.Errorf("KPI CrcFail = %d over a clean loopback, want 0", cum.CrcFail)
	}
	if cum.Throughput <= 0 {
		t.Errorf("KPI Throughput = %g, want > 0", cum.Throughput)
	}
	if c.Subframes != subframes {
		t.Errorf("KPI Subframes span = %d, want %d", c.Subframes, subframes)
	}
	pass, fail, dtx, skipped := kpiUserTotals(t, srv, 0)
	if pass != cum.CrcPass || fail != cum.CrcFail || dtx != cum.Dtx || skipped != cum.Skipped {
		t.Errorf("per-user sums %d/%d/%d/%d != cell totals %d/%d/%d/%d",
			pass, fail, dtx, skipped, cum.CrcPass, cum.CrcFail, cum.Dtx, cum.Skipped)
	}
	// 40 subframes crossed the 8-subframe window at least once.
	if w := c.Windows[0]; w.Epoch < 0 || w.CrcPass == 0 {
		t.Errorf("windowed view never completed: %+v", w)
	}
}

// TestKPISkippedReconcilesWithRejected drives overload and checks the
// "one number, two views" invariant: the per-user Skipped counters sum to
// exactly the cell-level UsersRejected counter (whole-frame sheds plus
// per-user admission rejections).
func TestKPISkippedReconcilesWithRejected(t *testing.T) {
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        2,
		Delta:          time.Millisecond,
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 0.05},
		Capacity:       0.25,
		Burst:          0.5,
		KPISampling:    1,
		Seed:           11,
	})
	stats, err := RunLoopback(GenConfig{
		Network:   "tcp",
		Addr:      addr,
		Cells:     1,
		Subframes: 80,
		Load:      4,
		Seed:      11,
		MaxPRB:    2,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	st := srv.CellStats(0)
	if st.UsersRejected == 0 {
		t.Fatal("overload rejected no users; test is vacuous")
	}
	cum := srv.KPI().CellSnapshot(0).Cumulative
	if cum.Skipped != st.UsersRejected {
		t.Errorf("KPI Skipped = %d, cell UsersRejected = %d", cum.Skipped, st.UsersRejected)
	}
	_, _, _, skipped := kpiUserTotals(t, srv, 0)
	if skipped != st.UsersRejected {
		t.Errorf("per-user Skipped sum = %d, cell UsersRejected = %d", skipped, st.UsersRejected)
	}
	if cum.CrcPass+cum.CrcFail != st.UsersAccepted {
		t.Errorf("KPI pass+fail = %d, UsersAccepted = %d", cum.CrcPass+cum.CrcFail, st.UsersAccepted)
	}
	if stats.UsersSent != st.UsersAccepted+st.UsersRejected {
		t.Errorf("sent %d != accepted %d + rejected %d", stats.UsersSent, st.UsersAccepted, st.UsersRejected)
	}
}

// TestKPIEndpointAndPrometheus checks the served surface: /fetch returns
// the EBLer-style structs and /metrics carries the ltephy_kpi_* series.
func TestKPIEndpointAndPrometheus(t *testing.T) {
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        2,
		Delta:          time.Millisecond,
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 1e-3},
		Capacity:       1,
		KPISampling:    1,
		Seed:           3,
	})
	if _, err := RunLoopback(GenConfig{
		Network: "tcp", Addr: addr, Cells: 1, Subframes: 10, Load: 1, Seed: 3, MaxPRB: 2,
	}); err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fetch", nil))
	body := rec.Body.String()
	for _, want := range []string{`"reliability"`, `"bler"`, `"throughput"`, `"crc_pass"`, `"crc_fail"`, `"dtx"`, `"skipped"`, `"users"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/fetch missing %s:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := rec.Body.String()
	for _, want := range []string{"ltephy_kpi_blocks_total", "ltephy_kpi_bler_percent", "ltephy_kpi_throughput_kbps"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
