package fronthaul

import (
	"bytes"
	"testing"
)

// TestIngestSteadyStateZeroAlloc pins the decode→admit→fill→dispatch hot
// path at zero heap allocations per frame: after the staging buffer and
// slot arena reach their high-water sizes, serving a frame must not touch
// the heap (the paper's steady-state discipline, extended to the serving
// layer).
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	const ant = 2
	users := genFrameUsers(t, ant, []int{3, 2, 4})
	frame, err := AppendFrame(nil, 0, 0, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}

	in, c := newBenchIngest(ant, FlatPredictor{PerPRB: 0.01}, 1, 2)
	var nAcks int
	in.ack = func(Ack) { nAcks++ }

	seq := int64(0)
	r := bytes.NewReader(nil)
	serve := func() {
		// Rewrite only the seq field and reseal the header CRC so every
		// frame is fresh in virtual time; the payload is untouched.
		resealSeq(frame, seq)
		seq++
		r.Reset(frame)
		if err := in.ReadFrame(r); err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
	}
	// Warm up: grow the staging buffer and the slot arena.
	serve()
	serve()

	if avg := testing.AllocsPerRun(50, serve); avg != 0 {
		t.Fatalf("ingest hot path allocates %.1f times per frame, want 0", avg)
	}
	if got := c.framesAccepted.Load(); got != seq {
		t.Fatalf("accepted %d frames, want %d", got, seq)
	}
}

func TestIngestShedPathZeroAlloc(t *testing.T) {
	const ant = 2
	users := genFrameUsers(t, ant, []int{3, 2})
	frame, err := AppendFrame(nil, 0, 0, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	// A capacity far below any user's estimate: every frame sheds on
	// overload, which must also be allocation-free.
	in, c := newBenchIngest(ant, FlatPredictor{PerPRB: 10}, 1e-6, 1e-6)
	var nAcks int
	in.ack = func(Ack) { nAcks++ }

	seq := int64(0)
	r := bytes.NewReader(nil)
	serve := func() {
		resealSeq(frame, seq)
		seq++
		r.Reset(frame)
		if err := in.ReadFrame(r); err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
	}
	serve()
	serve()
	if avg := testing.AllocsPerRun(50, serve); avg != 0 {
		t.Fatalf("shed path allocates %.1f times per frame, want 0", avg)
	}
	if got := c.framesShedOverload.Load(); got != seq {
		t.Fatalf("shed %d frames, want %d", got, seq)
	}
}
