package fronthaul

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"ltephy/internal/obs"
	"ltephy/internal/obs/kpi"
)

// WritePrometheus writes the per-cell serving counters in Prometheus text
// format — designed to be passed as an extra section to obs.Handler.
func (s *Server) WritePrometheus(w io.Writer) error {
	if _, err := io.WriteString(w,
		"# HELP ltephy_cell_frames_total Subframe frames by cell and disposition.\n# TYPE ltephy_cell_frames_total counter\n"+
			"# HELP ltephy_cell_users_total User records by cell and disposition.\n# TYPE ltephy_cell_users_total counter\n"+
			"# HELP ltephy_cell_deadline_total Admitted subframes by cell and deadline outcome.\n# TYPE ltephy_cell_deadline_total counter\n"+
			"# HELP ltephy_cell_activity_estimate_total Cumulative predicted activity by cell, offered vs admitted.\n# TYPE ltephy_cell_activity_estimate_total counter\n"+
			"# HELP ltephy_cell_harq_recovered_total CRC-failed blocks delivered by HARQ soft combining.\n# TYPE ltephy_cell_harq_recovered_total counter\n"+
			"# HELP ltephy_cell_draining Whether the cell is drained/redirecting (migration control plane).\n# TYPE ltephy_cell_draining gauge\n"); err != nil {
		return err
	}
	for i := range s.cells {
		st := s.CellStats(i)
		if _, err := fmt.Fprintf(w,
			"ltephy_cell_frames_total{cell=\"%d\",disposition=\"accepted\"} %d\n"+
				"ltephy_cell_frames_total{cell=\"%d\",disposition=\"shed_late\"} %d\n"+
				"ltephy_cell_frames_total{cell=\"%d\",disposition=\"shed_overload\"} %d\n"+
				"ltephy_cell_frames_total{cell=\"%d\",disposition=\"shed_backpressure\"} %d\n"+
				"ltephy_cell_frames_total{cell=\"%d\",disposition=\"duplicate\"} %d\n"+
				"ltephy_cell_frames_total{cell=\"%d\",disposition=\"redirected\"} %d\n"+
				"ltephy_cell_users_total{cell=\"%d\",disposition=\"accepted\"} %d\n"+
				"ltephy_cell_users_total{cell=\"%d\",disposition=\"rejected\"} %d\n"+
				"ltephy_cell_deadline_total{cell=\"%d\",outcome=\"met\"} %d\n"+
				"ltephy_cell_deadline_total{cell=\"%d\",outcome=\"missed\"} %d\n"+
				"ltephy_cell_harq_recovered_total{cell=\"%d\"} %d\n"+
				"ltephy_cell_draining{cell=\"%d\"} %d\n"+
				"ltephy_cell_activity_estimate_total{cell=\"%d\",kind=\"offered\"} %g\n"+
				"ltephy_cell_activity_estimate_total{cell=\"%d\",kind=\"admitted\"} %g\n",
			i, st.FramesAccepted, i, st.FramesShedLate, i, st.FramesShedOverload,
			i, st.FramesShedBackpressure, i, st.FramesDuplicate, i, st.FramesRedirected,
			i, st.UsersAccepted, i, st.UsersRejected,
			i, st.DeadlineMet, i, st.DeadlineMissed,
			i, st.HARQRecovered, i, boolGauge(st.Draining),
			i, st.OfferedEst, i, st.AdmittedEst); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP ltephy_corrupt_frames_total Connections closed on framing violations.\n"+
			"# TYPE ltephy_corrupt_frames_total counter\nltephy_corrupt_frames_total %d\n",
		s.CorruptFrames()); err != nil {
		return err
	}
	return nil
}

// boolGauge renders a bool as a 0/1 Prometheus gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// AdmissionEvents snapshots every cell's admission event ring: admit and
// shed instants keyed by cell (Worker = cell id, User = admitted count,
// Task = rejected/offered count).
func (s *Server) AdmissionEvents() []obs.Event {
	var out []obs.Event
	for _, c := range s.cells {
		out = c.ring.Snapshot(out)
	}
	return out
}

// WriteAdmissionTrace writes the admission decisions as a Chrome
// trace_event JSON document with one track per cell.
func (s *Server) WriteAdmissionTrace(w io.Writer) error {
	return obs.WriteChromeTraceEvents(w, s.AdmissionEvents(), "cell")
}

// Handler returns the server's observability endpoint: obs.Handler over
// pool 0's telemetry registry, extended with every pool's worker counters,
// the per-cell serving metrics and the ltephy_kpi_* series, plus
// /trace/admission for the admission timeline and /fetch for the
// EBLer-style KPI query endpoint. The KPI structs are also published via
// expvar (debug/vars key "ltephy_kpi").
func (s *Server) Handler() http.Handler {
	extras := []func(io.Writer) error{s.WritePrometheus, s.kpi.WritePrometheus}
	for _, p := range s.pools {
		extras = append(extras, p.WritePrometheus)
	}
	kpi.PublishExpvar(s.kpi)
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(s.pools[0].Telemetry(), extras...))
	mux.Handle("/fetch", kpi.FetchHandler(s.kpi))
	mux.HandleFunc("/trace/admission", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.WriteAdmissionTrace(w)
	})
	// /cells is the fleet coordinator's rebalancing feed: the per-cell
	// serving counters (activity estimates, shed and drain state) as JSON.
	mux.HandleFunc("/cells", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Stats())
	})
	// /healthz answers 200 while the server is serving — the coordinator's
	// liveness probe.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing {
			http.Error(w, "closing", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}
