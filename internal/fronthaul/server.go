package fronthaul

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ltephy/internal/cost"
	"ltephy/internal/obs"
	"ltephy/internal/obs/kpi"
	"ltephy/internal/sched"
	"ltephy/internal/uplink"
)

// Config configures a fronthaul server.
type Config struct {
	// Cells is the number of cells served (frames address cells 0..Cells-1).
	Cells int
	// Pools is the number of scheduler pools the cells are sharded across
	// (cell c runs on pool c mod Pools). Defaults to 1.
	Pools int
	// Workers is the worker count per pool. Defaults to GOMAXPROCS/Pools.
	Workers int
	// Receiver is the uplink receiver configuration; frames must declare
	// its antenna count.
	Receiver uplink.ReceiverConfig
	// Delta is the subframe period the admission budget refills over and
	// the default deadline budget. Defaults to 5ms.
	Delta time.Duration
	// DeadlineBudget is the dispatch-to-completion budget charged against
	// each admitted subframe. Defaults to Delta.
	DeadlineBudget time.Duration
	// Capacity is the admission activity budget granted per subframe
	// period (1.0 = the whole pool for one period). Defaults to 1.0.
	Capacity float64
	// Burst caps the banked admission budget. Defaults to 2*Capacity.
	Burst float64
	// Predictor estimates per-user workload for admission. Defaults to a
	// CostPredictor over cost.Default().
	Predictor Predictor
	// SlotsPerConn bounds the frames one connection may have in flight.
	// Defaults to 4.
	SlotsPerConn int
	// MaxUsers bounds the user records per frame. Defaults to
	// MaxUsersPerFrame.
	MaxUsers int
	// MaxPayload bounds the frame payload size in bytes. Defaults to
	// DefaultMaxPayload.
	MaxPayload int
	// ShedOnBackpressure sheds frames when no decode slot is free instead
	// of blocking the read loop (transport backpressure).
	ShedOnBackpressure bool
	// HARQ enables the server-side soft-combining ledger: CRC-failed
	// transmissions accumulate per-(cell,user) soft buffers
	// (uplink.HARQProcess) keyed by the wire RV flag, and a verified
	// combined decode counts the block as delivered in the KPI. Requires
	// the rate-matched TurboFull receiver (Turbo == TurboFull and
	// CodeRate > 0) and forces Receiver.KeepSoftBits. The ledger is the
	// per-user state live cell migration checkpoints.
	HARQ bool
	// DrainTimeout bounds a control-plane cell drain: how long DrainCell
	// waits for in-flight subframes to complete before giving up.
	// Defaults to 2s.
	DrainTimeout time.Duration
	// Sampling is the obs sampling knob applied to each pool's telemetry.
	Sampling int
	// KPISampling is the KPI registry's sampling knob: 0 disables KPI
	// recording, any value >= 1 counts every block outcome.
	KPISampling int
	// KPIWindows are the KPI tumbling-window lengths in subframes
	// (kpi.DefaultWindows when nil).
	KPIWindows []int64
	// RingDepth is the per-cell admission event-ring capacity
	// (obs.DefaultRingDepth when 0).
	RingDepth int
	// Seed seeds the pools' steal RNGs.
	Seed uint64
	// LockFreeDeque selects the Chase-Lev deque in the pools.
	LockFreeDeque bool
	// OnResult, when non-nil, receives every admitted user's result.
	OnResult func(uplink.UserResult)
}

func (c Config) withDefaults() (Config, error) {
	if c.Cells <= 0 {
		c.Cells = 1
	}
	if c.Cells > 1<<16 {
		return c, fmt.Errorf("fronthaul: %d cells exceeds the 16-bit cell index", c.Cells)
	}
	if c.Pools <= 0 {
		c.Pools = 1
	}
	if c.Pools > c.Cells {
		c.Pools = c.Cells
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / c.Pools
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.Receiver.Antennas == 0 {
		c.Receiver = uplink.DefaultConfig()
	}
	if err := c.Receiver.Validate(); err != nil {
		return c, fmt.Errorf("fronthaul: %w", err)
	}
	if c.Delta <= 0 {
		c.Delta = 5 * time.Millisecond
	}
	if c.DeadlineBudget <= 0 {
		c.DeadlineBudget = c.Delta
	}
	if c.Capacity <= 0 {
		c.Capacity = 1.0
	}
	if c.Burst < c.Capacity {
		c.Burst = 2 * c.Capacity
	}
	if c.Predictor == nil {
		cp := NewCostPredictor(cost.Default(), c.Receiver.Antennas, c.Workers, c.Delta.Seconds())
		cp.Model.TurboFull = c.Receiver.Turbo == uplink.TurboFull
		cp.Model.TurboIterations = c.Receiver.TurboIterations
		cp.Turbo = &TurboTracker{}
		c.Predictor = cp
	}
	if c.SlotsPerConn <= 0 {
		c.SlotsPerConn = 4
	}
	if c.MaxUsers <= 0 || c.MaxUsers > MaxUsersPerFrame {
		c.MaxUsers = MaxUsersPerFrame
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = DefaultMaxPayload
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.HARQ {
		if c.Receiver.Turbo != uplink.TurboFull || c.Receiver.CodeRate == 0 {
			return c, fmt.Errorf("fronthaul: HARQ requires the rate-matched TurboFull receiver (turbo=full, rate > 0)")
		}
		c.Receiver.KeepSoftBits = true
	}
	return c, nil
}

// cell is the per-cell serving state: the admission controller, the pool
// the cell's subframes run on, and the accept/shed/deadline accounting.
type cell struct {
	id   uint16
	pool *sched.Pool
	pred Predictor
	ring *obs.EventRing
	// kpi is the server-wide KPI registry (scoped by cell id); the ingest
	// records DTX and shed/rejected users through it.
	kpi *kpi.Registry

	// mu serialises admission decisions and the estimate accounting
	// across connections carrying the same cell. The draining flag is
	// written under mu and re-checked under mu in the ingest's admission
	// section, so no frame can slip past a drain: once DrainCell returns,
	// every frame either completed (counted by inflight) or was
	// redirect-acked.
	mu          sync.Mutex
	adm         Admission
	offeredEst  float64
	admittedEst float64
	grantedEst  float64

	// draining marks the cell drained/redirecting: new frames are
	// answered AckRedirect without processing or KPI accounting. Set by
	// DrainCell (and left set after a migration), cleared by ResumeCell
	// and RestoreCell.
	draining atomic.Bool
	// inflight counts dispatched subframes whose completion hook has not
	// fired yet — the SubframeFin-driven drain barrier.
	inflight atomic.Int64

	framesAccepted         atomic.Int64
	framesShedLate         atomic.Int64
	framesShedOverload     atomic.Int64
	framesShedBackpressure atomic.Int64
	framesDuplicate        atomic.Int64
	framesRedirected       atomic.Int64
	usersAccepted          atomic.Int64
	usersRejected          atomic.Int64
	deadlineMet            atomic.Int64
	deadlineMissed         atomic.Int64
	harqRecovered          atomic.Int64
}

// countAdmit records an accepted subframe (k users admitted, rej
// rejected) and an admit instant on the cell's event ring.
//
//ltephy:hotpath — runs once per admitted frame in the serving loop.
func (c *cell) countAdmit(seq int64, k, rej int, now int64) {
	c.framesAccepted.Add(1)
	c.usersAccepted.Add(int64(k))
	c.usersRejected.Add(int64(rej))
	c.ring.Record(obs.Event{
		Start: now, End: now, Seq: seq,
		User: int32(k), Task: int32(rej),
		Worker: int16(c.id), Kind: obs.KindAdmit,
	})
}

// countShed records a whole-subframe shed (n users offered) and a shed
// instant on the cell's event ring.
//
//ltephy:hotpath — runs once per shed frame in the serving loop.
func (c *cell) countShed(status uint8, seq int64, n int, offeredEst float64) {
	switch status {
	case AckShedLate:
		c.framesShedLate.Add(1)
	case AckShedOverload:
		c.framesShedOverload.Add(1)
	default:
		c.framesShedBackpressure.Add(1)
	}
	c.usersRejected.Add(int64(n))
	now := obs.Nanotime()
	c.ring.Record(obs.Event{
		Start: now, End: now, Seq: seq,
		User: 0, Task: int32(n),
		Worker: int16(c.id), Kind: obs.KindShed,
	})
}

// CellStats is a snapshot of one cell's serving counters.
type CellStats struct {
	Cell                   int
	FramesAccepted         int64
	FramesShedLate         int64
	FramesShedOverload     int64
	FramesShedBackpressure int64
	// FramesDuplicate counts replayed frames (sequence not newer than the
	// last admitted) answered AckDuplicate without processing — NOT shed:
	// the original pass already accounted for them.
	FramesDuplicate int64
	// FramesRedirected counts frames answered AckRedirect while the cell
	// was draining or migrated away.
	FramesRedirected int64
	UsersAccepted    int64
	UsersRejected    int64
	DeadlineMet      int64
	DeadlineMissed   int64
	// HARQRecovered counts CRC-failed blocks later delivered by the
	// soft-combining ledger (Config.HARQ).
	HARQRecovered int64
	// Draining reports whether the cell is drained/redirecting.
	Draining bool
	// OfferedEst and AdmittedEst are the cumulative predicted activity of
	// all offered vs admitted users; 1 - AdmittedEst/OfferedEst is the
	// realized (activity-weighted) shed fraction. GrantedEst is the
	// activity budget the admission controller actually credited (burst +
	// clamped per-period refills); 1 - GrantedEst/OfferedEst is the shed
	// fraction the estimator predicted for the granted budget.
	OfferedEst  float64
	AdmittedEst float64
	GrantedEst  float64
}

// FramesShed sums the shed counters.
func (s CellStats) FramesShed() int64 {
	return s.FramesShedLate + s.FramesShedOverload + s.FramesShedBackpressure
}

// Server is the fronthaul serving layer: it accepts connections on any
// number of listeners, decodes frames, admits subframes per cell and
// dispatches them onto the cells' scheduler pools.
type Server struct {
	cfg      Config
	budgetNs int64
	pools    []*sched.Pool
	cells    []*cell
	kpi      *kpi.Registry
	// harq is the soft-combining ledger (nil unless Config.HARQ).
	harq *harqLedger

	mu      sync.Mutex
	lns     map[net.Listener]struct{}
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup

	corruptFrames atomic.Int64
}

// NewServer builds the pools and cells and returns a server ready to
// Serve listeners. Call Close to stop the pools.
func NewServer(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		budgetNs: cfg.DeadlineBudget.Nanoseconds(),
		lns:      map[net.Listener]struct{}{},
		conns:    map[net.Conn]struct{}{},
	}
	s.kpi = kpi.New(kpi.Config{Cells: cfg.Cells, MaxUsers: cfg.MaxUsers, Windows: cfg.KPIWindows})
	s.kpi.SetSampling(cfg.KPISampling)
	if cfg.HARQ {
		s.harq = newHARQLedger(cfg.Receiver)
	}
	// Feedback loop: when the predictor can absorb realized turbo
	// half-iteration counts, every result feeds it before reaching the
	// caller's hook, so admission estimates follow early termination.
	// Every result also lands in the KPI registry (CrcPass/CrcFail + bits)
	// before the caller's hook runs. With the HARQ ledger, a CRC failure
	// first tries soft-combining: a verified combined decode counts the
	// block as delivered (CrcPass with the recovered payload's bits)
	// instead of a NACK, keeping the one-bucket-per-user invariant.
	user := cfg.OnResult
	to, observeTurbo := cfg.Predictor.(interface{ ObserveTurbo(int) })
	reg := s.kpi
	onResult := func(r uplink.UserResult) {
		if observeTurbo {
			to.ObserveTurbo(r.TurboHalfIters)
		}
		crcOK, bits := r.CRCOK, 8*len(r.Bits)
		if s.harq != nil {
			if crcOK {
				s.harq.clear(r.Cell, r.UserID)
			} else if payload, ok := s.harq.absorb(r); ok {
				crcOK, bits = true, 8*len(payload)
				if c := s.lookupCell(r.Cell); c != nil {
					c.harqRecovered.Add(1)
				}
			}
		}
		reg.RecordResult(r.Cell, r.Seq, r.UserID, crcOK, bits)
		if user != nil {
			user(r)
		}
	}
	s.pools = make([]*sched.Pool, cfg.Pools)
	for i := range s.pools {
		pc := sched.DefaultPoolConfig()
		pc.Workers = cfg.Workers
		pc.Receiver = cfg.Receiver
		pc.Seed = cfg.Seed + uint64(i)
		pc.LockFreeDeque = cfg.LockFreeDeque
		pc.OnResult = onResult
		pool, err := sched.NewPool(pc)
		if err != nil {
			for _, p := range s.pools[:i] {
				p.Close()
			}
			return nil, err
		}
		pool.Telemetry().SetSampling(cfg.Sampling)
		pool.Telemetry().Deadline().SetBudget(s.budgetNs)
		s.pools[i] = pool
	}
	s.cells = make([]*cell, cfg.Cells)
	for i := range s.cells {
		s.cells[i] = &cell{
			id:   uint16(i),
			pool: s.pools[i%cfg.Pools],
			pred: cfg.Predictor,
			ring: obs.NewEventRing(cfg.RingDepth),
			kpi:  s.kpi,
			adm:  Admission{Capacity: cfg.Capacity, Burst: cfg.Burst},
		}
	}
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// CellStats snapshots one cell's counters.
func (s *Server) CellStats(i int) CellStats {
	c := s.cells[i]
	c.mu.Lock()
	offered, admitted, granted := c.offeredEst, c.admittedEst, c.grantedEst
	c.mu.Unlock()
	return CellStats{
		Cell:                   i,
		FramesAccepted:         c.framesAccepted.Load(),
		FramesShedLate:         c.framesShedLate.Load(),
		FramesShedOverload:     c.framesShedOverload.Load(),
		FramesShedBackpressure: c.framesShedBackpressure.Load(),
		FramesDuplicate:        c.framesDuplicate.Load(),
		FramesRedirected:       c.framesRedirected.Load(),
		UsersAccepted:          c.usersAccepted.Load(),
		UsersRejected:          c.usersRejected.Load(),
		DeadlineMet:            c.deadlineMet.Load(),
		DeadlineMissed:         c.deadlineMissed.Load(),
		HARQRecovered:          c.harqRecovered.Load(),
		Draining:               c.draining.Load(),
		OfferedEst:             offered,
		AdmittedEst:            admitted,
		GrantedEst:             granted,
	}
}

// Stats snapshots every cell.
func (s *Server) Stats() []CellStats {
	out := make([]CellStats, len(s.cells))
	for i := range out {
		out[i] = s.CellStats(i)
	}
	return out
}

// CorruptFrames counts connections' framing violations (each closes its
// connection).
func (s *Server) CorruptFrames() int64 { return s.corruptFrames.Load() }

// Pools returns the scheduler pools (for telemetry access).
func (s *Server) Pools() []*sched.Pool { return s.pools }

// KPI returns the server's KPI registry (per-cell/per-user EBLer
// counters; recording is gated by Config.KPISampling).
func (s *Server) KPI() *kpi.Registry { return s.kpi }

// Serve accepts connections on ln until the listener is closed (by Close
// or externally). It always returns a non-nil error; after Close the
// error is net.ErrClosed.
//
// Per-connection handler lifecycle is owned by s.wg: Add(1) under the
// mutex before the spawn, handleConn defers Done, Close joins via
// wg.Wait after closing every connection.
//
//ltephy:spawn-point
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// lookupCell resolves a frame's cell index.
func (s *Server) lookupCell(id uint16) *cell {
	if int(id) >= len(s.cells) {
		return nil
	}
	return s.cells[id]
}

// handleConn runs one connection: an ingest loop decoding frames and a
// writer goroutine delivering acks. Every frame gets exactly one ack
// (done or shed); teardown reclaims all slots first, which guarantees
// every in-flight subframe's completion hook has fired before the ack
// channel closes.
//
// The ack writer is bracketed by the local writer WaitGroup: Add before
// the spawn, Done deferred in the closure, joined by writer.Wait before
// the connection closes.
//
//ltephy:spawn-point
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	acks := make(chan Ack, s.cfg.SlotsPerConn+64)
	in := &Ingest{
		maxUsers:           s.cfg.MaxUsers,
		maxPayload:         s.cfg.MaxPayload,
		antennas:           uint8(s.cfg.Receiver.Antennas),
		shedOnBackpressure: s.cfg.ShedOnBackpressure,
		lookup:             s.lookupCell,
		dispatch:           func(c *cell, sl *Slot) { c.pool.SubmitSubframeFin(&sl.sf, sl.fin) },
		ack:                func(a Ack) { acks <- a },
		slots:              make(chan *Slot, s.cfg.SlotsPerConn),
	}
	for i := 0; i < s.cfg.SlotsPerConn; i++ {
		sl := newSlot(s.cfg.MaxUsers, s.cfg.Receiver.Antennas)
		sl.fin = sched.NewSubframeFin(func() { s.complete(in, acks, sl) })
		in.slots <- sl
	}

	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		var buf [AckLen]byte
		broken := false
		for a := range acks {
			if broken {
				continue // keep draining so completions never block
			}
			PutAck(&buf, a)
			if _, err := conn.Write(buf[:]); err != nil {
				broken = true
			}
		}
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		if err := in.ReadFrame(br); err != nil {
			if IsDecodeError(err) {
				s.corruptFrames.Add(1)
			}
			break
		}
	}
	// Reclaim every slot: blocks until all dispatched subframes have
	// completed and acked, then release the writer and the socket.
	for i := 0; i < s.cfg.SlotsPerConn; i++ {
		<-in.slots
	}
	close(acks)
	writer.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// complete is the subframe-completion hook, run on a worker goroutine:
// charge the deadline, ack the frame, recycle the slot.
func (s *Server) complete(in *Ingest, acks chan Ack, sl *Slot) {
	now := obs.Nanotime()
	c := s.cells[sl.cell]
	if now-sl.dispatchNs <= s.budgetNs {
		c.deadlineMet.Add(1)
	} else {
		c.deadlineMissed.Add(1)
	}
	acks <- Ack{Cell: sl.cell, Status: AckDone, UsersAccepted: sl.admitted, Seq: sl.seq}
	sl.recycle()
	in.slots <- sl
	// Decrement last: a drain observing inflight == 0 knows the ack has
	// been queued and the slot returned.
	c.inflight.Add(-1)
}

// Close stops accepting, closes every live connection, waits for the
// handlers to finish and shuts the pools down.
func (s *Server) Close() {
	s.mu.Lock()
	s.closing = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, p := range s.pools {
		p.Close()
	}
}
