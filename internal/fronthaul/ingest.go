package fronthaul

import (
	"errors"
	"io"

	"ltephy/internal/obs"
)

// ErrUnknownCell reports a frame addressed to a cell the server does not
// serve.
var ErrUnknownCell = errors.New("fronthaul: unknown cell")

// Ingest is one connection's decode→admit→fill→dispatch engine,
// independent of the transport: ReadFrame pulls exactly one frame from an
// io.Reader, runs admission for the addressed cell, materialises the
// admitted users into a free slot and hands it to the dispatch hook. The
// server wires dispatch to the cell's scheduler pool and ack to the
// connection's writer; tests inject both directly.
//
// All per-frame state (header, staging buffer, record/estimate/priority
// arrays) is owned by the Ingest and reused, so steady-state ingest
// performs no heap allocation (TestIngestSteadyStateZeroAlloc pins this).
type Ingest struct {
	maxUsers           int
	maxPayload         int
	antennas           uint8
	shedOnBackpressure bool
	lookup             func(cellID uint16) *cell
	dispatch           func(c *cell, s *Slot)
	ack                func(Ack)

	// slots is the connection's free-slot list; completion returns slots
	// here, so its capacity bounds the frames in flight.
	slots chan *Slot

	hdr     [FrameHeaderLen]byte
	trailer [TrailerLen]byte
	staging []byte
	recs    [MaxUsersPerFrame]UserRecord
	est     [MaxUsersPerFrame]float64
	prio    [MaxUsersPerFrame]uint8
	admit   [MaxUsersPerFrame]bool
	// dtxIDs stages the frame's DTX user ids: they are recorded only
	// after the admission pass has ruled the frame is not a replayed
	// duplicate, or every replay would re-count them.
	dtxIDs [MaxUsersPerFrame]int
	// redirected pins cells this connection has answered AckRedirect
	// for: every later frame for such a cell must also redirect. The
	// redirect contract is "reconnect and replay in order from the
	// oldest unacked sequence" — admitting a later in-flight frame on
	// the old connection after the drain lifts would advance the cell's
	// duplicate-detection sequence past the redirected frame, and its
	// replay would be swallowed as a duplicate without ever being
	// counted (lazily allocated; nil until the first redirect).
	redirected map[uint16]bool
}

// IsDecodeError reports whether err is a frame-codec violation — the
// stream framing can no longer be trusted and the connection must close.
func IsDecodeError(err error) bool {
	switch {
	case errors.Is(err, ErrMagic), errors.Is(err, ErrVersion),
		errors.Is(err, ErrHeaderCRC), errors.Is(err, ErrPayloadCRC),
		errors.Is(err, ErrLimits), errors.Is(err, ErrUserRecord),
		errors.Is(err, ErrTruncated), errors.Is(err, ErrUnknownCell):
		return true
	}
	return false
}

// stage returns the reusable payload buffer grown to n bytes. Growth is a
// high-water event: after warm-up the buffer is large enough and the hot
// path never allocates.
func (in *Ingest) stage(n int) []byte {
	if cap(in.staging) < n {
		in.staging = make([]byte, n) //ltephy:alloc-ok high-water staging growth
	}
	return in.staging[:n]
}

// redirect acks one frame with AckRedirect and pins the cell as
// redirected for the rest of this connection (see the redirected field).
//
//ltephy:coldpath — runs only while a cell drains or after it migrated.
func (in *Ingest) redirect(c *cell, cellID uint16, seq int64) {
	if in.redirected == nil {
		in.redirected = make(map[uint16]bool) //ltephy:alloc-ok cold redirect path
	}
	in.redirected[cellID] = true
	c.framesRedirected.Add(1)
	in.ack(Ack{Cell: cellID, Status: AckRedirect, Seq: seq})
}

// recordDTX flushes the frame's staged DTX users into the KPI. Called
// only on paths that ruled out a replayed duplicate (plus the
// pre-admission backpressure shed, which cannot tell).
//
//ltephy:hotpath — runs once per non-duplicate frame in the serving loop.
func (in *Ingest) recordDTX(c *cell, seq int64, dtxN int) {
	for i := 0; i < dtxN; i++ {
		c.kpi.RecordDTX(c.id, seq, in.dtxIDs[i])
	}
}

// ReadFrame ingests exactly one frame: read header, payload and trailer;
// verify CRCs; first-pass decode the user records; predict each user's
// workload; run the cell's admission pass; then either shed the subframe
// (late/overload/backpressure — drop-and-count, one ack each) or fill
// the admitted users into a slot and dispatch it. Returns io.EOF on a
// clean end of stream, a decode sentinel (see IsDecodeError) on framing
// violations, and transport errors otherwise.
//
// Blocking is sanctioned here because ReadFrame IS the transport
// boundary: the reads are paced by the peer (blocking on them is the
// contract), the slot receive is deliberate admission backpressure (or
// sheds, with ShedOnBackpressure), and the cell mutex guards a bounded
// accounting section shared with countShed/countAdmit. Everything it
// dispatches into stays under the blockingcall walk.
//
//ltephy:hotpath — the serving loop: runs once per ingested frame.
//ltephy:blocking-ok
func (in *Ingest) ReadFrame(r io.Reader) error {
	if _, err := io.ReadFull(r, in.hdr[:]); err != nil {
		return err // io.EOF: clean end between frames
	}
	h, err := ParseHeader(&in.hdr, in.maxUsers, in.maxPayload)
	if err != nil {
		return err
	}
	// The receiver is configured for a fixed antenna count; a frame
	// declaring any other is unservable (and the slots' row headers are
	// sized for the configured count). Empty frames carry no samples, so
	// their declared count is irrelevant.
	if h.NUsers > 0 && h.Antennas != in.antennas {
		return ErrLimits
	}
	payload := in.stage(int(h.PayloadLen))
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, in.trailer[:]); err != nil {
		return err
	}
	if err := VerifyPayload(payload, &in.trailer); err != nil {
		return err
	}
	c := in.lookup(h.Cell)
	if c == nil {
		return ErrUnknownCell
	}
	// A draining (or migrated-away) cell redirects before any accounting:
	// the frame will be replayed to the cell's new owner, so recording
	// anything here (even DTX) would double-book the fleet KPI. The flag
	// is re-checked under c.mu below to close the race with a concurrent
	// DrainCell. Once a cell has redirected on this connection it keeps
	// redirecting even after the drain lifts: only a fresh connection's
	// in-order replay may continue the cell's sequence space.
	if c.draining.Load() || in.redirected[h.Cell] {
		in.redirect(c, h.Cell, h.Seq)
		return nil
	}
	n, err := ParseUsers(h, payload, &in.recs)
	if err != nil {
		return err
	}
	// DTX compaction: scheduled-but-absent users are counted (KPI Dtx),
	// not decoded — their records carry a grid for wire-size consistency
	// but must not consume admission budget or decode-slot capacity.
	// Recording is deferred until the admission pass has ruled out a
	// replayed duplicate (exactly-once KPI accounting across replays).
	live, dtxN := 0, 0
	for i := 0; i < n; i++ {
		if in.recs[i].DTX {
			in.dtxIDs[dtxN] = in.recs[i].Params.ID
			dtxN++
			continue
		}
		if live != i {
			in.recs[live] = in.recs[i]
		}
		live++
	}
	n = live
	for i := 0; i < n; i++ {
		in.est[i] = c.pred.EstimateUser(in.recs[i].Params)
		in.prio[i] = in.recs[i].Priority
	}

	// Acquire a decode slot. By default ingest blocks until one frees up
	// (transport backpressure); with ShedOnBackpressure the frame is shed
	// instead, keeping the read loop hot.
	var slot *Slot
	if in.shedOnBackpressure {
		select {
		case slot = <-in.slots:
		default:
			// Backpressure sheds before the admission pass, so it cannot
			// tell a replay from a fresh frame; exactly-once accounting
			// under replay therefore requires the default blocking mode
			// (DESIGN.md §13).
			in.recordDTX(c, h.Seq, dtxN)
			c.countShed(AckShedBackpressure, h.Seq, n, 0)
			for i := 0; i < n; i++ {
				c.kpi.RecordSkipped(c.id, h.Seq, in.recs[i].Params.ID)
			}
			in.ack(Ack{Cell: h.Cell, Status: AckShedBackpressure, Seq: h.Seq})
			return nil
		}
	} else {
		slot = <-in.slots
	}

	c.mu.Lock()
	if c.draining.Load() {
		// DrainCell set the flag after the early check above; it holds
		// c.mu while flipping, so from here on no frame passes.
		c.mu.Unlock()
		in.slots <- slot
		in.redirect(c, h.Cell, h.Seq)
		return nil
	}
	d := c.adm.Decide(h.Seq, in.est[:n], in.prio[:n], in.admit[:n])
	if !d.Late {
		// Duplicates carry no new load: the original pass already
		// accumulated this subframe's estimate, so counting the replay
		// would inflate the predicted shed fraction.
		c.offeredEst += d.OfferedEst
		c.admittedEst += d.AdmittedEst
		c.grantedEst += d.GrantedEst
	}
	if !d.Late && !d.Overload {
		// Count the dispatch inside the admission section so a drain that
		// acquires c.mu afterwards observes it (complete() decrements).
		c.inflight.Add(1)
	}
	c.mu.Unlock()

	if d.Late {
		// A non-newer sequence on an in-order transport is a replay
		// (reconnect or migration), not a late subframe: the original pass
		// already placed every user in exactly one KPI bucket, so the
		// duplicate is acknowledged without processing or accounting.
		in.slots <- slot
		c.framesDuplicate.Add(1)
		in.ack(Ack{Cell: h.Cell, Status: AckDuplicate, Seq: h.Seq})
		return nil
	}
	if d.Overload {
		in.slots <- slot
		in.recordDTX(c, h.Seq, dtxN)
		c.countShed(AckShedOverload, h.Seq, n, d.OfferedEst)
		for i := 0; i < n; i++ {
			c.kpi.RecordSkipped(c.id, h.Seq, in.recs[i].Params.ID)
		}
		in.ack(Ack{Cell: h.Cell, Status: AckShedOverload, Seq: h.Seq})
		return nil
	}

	in.recordDTX(c, h.Seq, dtxN)
	k := 0
	for i := 0; i < n; i++ {
		if in.admit[i] {
			fillUser(&slot.users[k], slot.ws, h, payload, in.recs[i])
			k++
		} else {
			// Admission rejected this user: its block is never decoded, so
			// it lands in the per-user Skipped bucket — the same events the
			// cell-level usersRejected counter sees (one number, two views).
			c.kpi.RecordSkipped(c.id, h.Seq, in.recs[i].Params.ID)
		}
	}
	now := obs.Nanotime()
	slot.arm(h.Cell, h.Seq, k, now)
	c.countAdmit(h.Seq, k, n-k, now)
	in.dispatch(c, slot)
	return nil
}
