package fronthaul

import (
	"errors"
	"io"

	"ltephy/internal/obs"
)

// ErrUnknownCell reports a frame addressed to a cell the server does not
// serve.
var ErrUnknownCell = errors.New("fronthaul: unknown cell")

// Ingest is one connection's decode→admit→fill→dispatch engine,
// independent of the transport: ReadFrame pulls exactly one frame from an
// io.Reader, runs admission for the addressed cell, materialises the
// admitted users into a free slot and hands it to the dispatch hook. The
// server wires dispatch to the cell's scheduler pool and ack to the
// connection's writer; tests inject both directly.
//
// All per-frame state (header, staging buffer, record/estimate/priority
// arrays) is owned by the Ingest and reused, so steady-state ingest
// performs no heap allocation (TestIngestSteadyStateZeroAlloc pins this).
type Ingest struct {
	maxUsers           int
	maxPayload         int
	antennas           uint8
	shedOnBackpressure bool
	lookup             func(cellID uint16) *cell
	dispatch           func(c *cell, s *Slot)
	ack                func(Ack)

	// slots is the connection's free-slot list; completion returns slots
	// here, so its capacity bounds the frames in flight.
	slots chan *Slot

	hdr     [FrameHeaderLen]byte
	trailer [TrailerLen]byte
	staging []byte
	recs    [MaxUsersPerFrame]UserRecord
	est     [MaxUsersPerFrame]float64
	prio    [MaxUsersPerFrame]uint8
	admit   [MaxUsersPerFrame]bool
}

// IsDecodeError reports whether err is a frame-codec violation — the
// stream framing can no longer be trusted and the connection must close.
func IsDecodeError(err error) bool {
	switch {
	case errors.Is(err, ErrMagic), errors.Is(err, ErrVersion),
		errors.Is(err, ErrHeaderCRC), errors.Is(err, ErrPayloadCRC),
		errors.Is(err, ErrLimits), errors.Is(err, ErrUserRecord),
		errors.Is(err, ErrTruncated), errors.Is(err, ErrUnknownCell):
		return true
	}
	return false
}

// stage returns the reusable payload buffer grown to n bytes. Growth is a
// high-water event: after warm-up the buffer is large enough and the hot
// path never allocates.
func (in *Ingest) stage(n int) []byte {
	if cap(in.staging) < n {
		in.staging = make([]byte, n) //ltephy:alloc-ok high-water staging growth
	}
	return in.staging[:n]
}

// ReadFrame ingests exactly one frame: read header, payload and trailer;
// verify CRCs; first-pass decode the user records; predict each user's
// workload; run the cell's admission pass; then either shed the subframe
// (late/overload/backpressure — drop-and-count, one ack each) or fill
// the admitted users into a slot and dispatch it. Returns io.EOF on a
// clean end of stream, a decode sentinel (see IsDecodeError) on framing
// violations, and transport errors otherwise.
//
// Blocking is sanctioned here because ReadFrame IS the transport
// boundary: the reads are paced by the peer (blocking on them is the
// contract), the slot receive is deliberate admission backpressure (or
// sheds, with ShedOnBackpressure), and the cell mutex guards a bounded
// accounting section shared with countShed/countAdmit. Everything it
// dispatches into stays under the blockingcall walk.
//
//ltephy:hotpath — the serving loop: runs once per ingested frame.
//ltephy:blocking-ok
func (in *Ingest) ReadFrame(r io.Reader) error {
	if _, err := io.ReadFull(r, in.hdr[:]); err != nil {
		return err // io.EOF: clean end between frames
	}
	h, err := ParseHeader(&in.hdr, in.maxUsers, in.maxPayload)
	if err != nil {
		return err
	}
	// The receiver is configured for a fixed antenna count; a frame
	// declaring any other is unservable (and the slots' row headers are
	// sized for the configured count). Empty frames carry no samples, so
	// their declared count is irrelevant.
	if h.NUsers > 0 && h.Antennas != in.antennas {
		return ErrLimits
	}
	payload := in.stage(int(h.PayloadLen))
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, in.trailer[:]); err != nil {
		return err
	}
	if err := VerifyPayload(payload, &in.trailer); err != nil {
		return err
	}
	c := in.lookup(h.Cell)
	if c == nil {
		return ErrUnknownCell
	}
	n, err := ParseUsers(h, payload, &in.recs)
	if err != nil {
		return err
	}
	// DTX compaction: scheduled-but-absent users are counted (KPI Dtx),
	// not decoded — their records carry a grid for wire-size consistency
	// but must not consume admission budget or decode-slot capacity.
	live := 0
	for i := 0; i < n; i++ {
		if in.recs[i].DTX {
			c.kpi.RecordDTX(c.id, h.Seq, in.recs[i].Params.ID)
			continue
		}
		if live != i {
			in.recs[live] = in.recs[i]
		}
		live++
	}
	n = live
	for i := 0; i < n; i++ {
		in.est[i] = c.pred.EstimateUser(in.recs[i].Params)
		in.prio[i] = in.recs[i].Priority
	}

	// Acquire a decode slot. By default ingest blocks until one frees up
	// (transport backpressure); with ShedOnBackpressure the frame is shed
	// instead, keeping the read loop hot.
	var slot *Slot
	if in.shedOnBackpressure {
		select {
		case slot = <-in.slots:
		default:
			c.countShed(AckShedBackpressure, h.Seq, n, 0)
			for i := 0; i < n; i++ {
				c.kpi.RecordSkipped(c.id, h.Seq, in.recs[i].Params.ID)
			}
			in.ack(Ack{Cell: h.Cell, Status: AckShedBackpressure, Seq: h.Seq})
			return nil
		}
	} else {
		slot = <-in.slots
	}

	c.mu.Lock()
	d := c.adm.Decide(h.Seq, in.est[:n], in.prio[:n], in.admit[:n])
	c.offeredEst += d.OfferedEst
	c.admittedEst += d.AdmittedEst
	c.mu.Unlock()

	if d.Late || d.Overload {
		in.slots <- slot
		status := AckShedLate
		if d.Overload {
			status = AckShedOverload
		}
		c.countShed(status, h.Seq, n, d.OfferedEst)
		for i := 0; i < n; i++ {
			c.kpi.RecordSkipped(c.id, h.Seq, in.recs[i].Params.ID)
		}
		in.ack(Ack{Cell: h.Cell, Status: status, Seq: h.Seq})
		return nil
	}

	k := 0
	for i := 0; i < n; i++ {
		if in.admit[i] {
			fillUser(&slot.users[k], slot.ws, h, payload, in.recs[i])
			k++
		} else {
			// Admission rejected this user: its block is never decoded, so
			// it lands in the per-user Skipped bucket — the same events the
			// cell-level usersRejected counter sees (one number, two views).
			c.kpi.RecordSkipped(c.id, h.Seq, in.recs[i].Params.ID)
		}
	}
	now := obs.Nanotime()
	slot.arm(h.Cell, h.Seq, k, now)
	c.countAdmit(h.Seq, k, n-k, now)
	in.dispatch(c, slot)
	return nil
}
