package fronthaul

// Control plane: a tiny length-prefixed request/response protocol the
// fleet coordinator drives cell drains, checkpoints, restores and
// releases over (DESIGN.md §13). It runs on its own listener — control
// traffic must not queue behind data-plane frames — and every operation
// is cold path, so the codec favours self-validation (magic, version,
// CRC on payloads) over throughput.
//
// Request:  "LTEC" | ver u8 | op u8 | cell u16 | arg u32 | payloadLen u32
//           | payload | IEEE CRC-32 of payload (only when payloadLen > 0)
// Response: "LTER" | ver u8 | status u8 | cell u16 | payloadLen u32
//           | payload | IEEE CRC-32 of payload (only when payloadLen > 0)
//
// OpDrain's arg is the drain timeout in milliseconds (0 = server
// default). OpCheckpoint answers with the snapshot as payload; OpRestore
// carries it as the request payload. OpStats answers with a JSON
// CellStats snapshot. Error responses carry the error text as payload.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// Control opcodes.
const (
	OpDrain      = 1 // stop admitting, wait for in-flight subframes
	OpCheckpoint = 2 // serialise a drained cell's state
	OpRestore    = 3 // install a snapshot and open the cell
	OpResume     = 4 // lift a drain without migrating
	OpRelease    = 5 // clear a migrated-away cell on the source
	OpStats      = 6 // JSON CellStats snapshot
)

// Control response statuses.
const (
	CtrlOK             = 0
	CtrlErrUnknownCell = 1
	CtrlErrNotDrained  = 2
	CtrlErrTimeout     = 3
	CtrlErrBadRequest  = 4
	CtrlErrInternal    = 5
)

const (
	ctrlReqMagic  = "LTEC"
	ctrlRespMagic = "LTER"
	ctrlVersion   = 1
	ctrlReqLen    = 16
	ctrlRespLen   = 12
	// ctrlMaxPayload bounds control payloads (snapshots dominate: cumulative
	// KPI tables plus HARQ mother buffers).
	ctrlMaxPayload = 64 << 20
)

// ErrControl reports a control-protocol violation (the connection closes).
var ErrControl = errors.New("fronthaul: bad control message")

// ctrlError maps a control status to an error on the client side.
func ctrlError(status uint8, text string) error {
	switch status {
	case CtrlOK:
		return nil
	case CtrlErrUnknownCell:
		return fmt.Errorf("%w: %s", ErrUnknownCell, text)
	case CtrlErrNotDrained:
		return fmt.Errorf("%w: %s", ErrNotDraining, text)
	case CtrlErrTimeout:
		return fmt.Errorf("%w: %s", ErrDrainTimeout, text)
	default:
		return fmt.Errorf("fronthaul: control status %d: %s", status, text)
	}
}

// ctrlStatusFor maps a server-side error to a wire status.
func ctrlStatusFor(err error) uint8 {
	switch {
	case err == nil:
		return CtrlOK
	case errors.Is(err, ErrUnknownCell):
		return CtrlErrUnknownCell
	case errors.Is(err, ErrNotDraining):
		return CtrlErrNotDrained
	case errors.Is(err, ErrDrainTimeout):
		return CtrlErrTimeout
	case errors.Is(err, ErrCheckpoint), errors.Is(err, ErrControl):
		return CtrlErrBadRequest
	default:
		return CtrlErrInternal
	}
}

// writeCtrlPayload appends payload + CRC after a header write.
func writeCtrlPayload(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return nil
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// readCtrlPayload reads and verifies a CRC-trailed payload.
func readCtrlPayload(r io.Reader, n uint32) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	if n > ctrlMaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrControl, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, fmt.Errorf("%w: payload CRC mismatch", ErrControl)
	}
	return payload, nil
}

// ServeControl accepts control connections on ln until the listener
// closes (by Close or externally). Each connection runs a sequential
// request/response loop; handler lifecycle is owned by s.wg exactly as
// Serve's data-plane handlers are.
//
//ltephy:spawn-point
func (s *Server) ServeControl(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleControl(conn)
	}
}

// handleControl runs one control connection's request loop.
//
// Blocking is the contract here: requests are paced by the coordinator
// and drains deliberately wait for data-plane quiescence.
//
//ltephy:coldpath
//ltephy:blocking-ok
func (s *Server) handleControl(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var hdr [ctrlReqLen]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		if string(hdr[:4]) != ctrlReqMagic || hdr[4] != ctrlVersion {
			return
		}
		op := hdr[5]
		cellID := int(binary.LittleEndian.Uint16(hdr[6:8]))
		arg := binary.LittleEndian.Uint32(hdr[8:12])
		payload, err := readCtrlPayload(conn, binary.LittleEndian.Uint32(hdr[12:16]))
		if err != nil {
			return // framing is gone; close
		}
		var resp []byte
		switch op {
		case OpDrain:
			err = s.DrainCell(cellID, time.Duration(arg)*time.Millisecond)
		case OpCheckpoint:
			resp, err = s.CheckpointCell(cellID)
		case OpRestore:
			err = s.RestoreCell(cellID, payload)
		case OpResume:
			err = s.ResumeCell(cellID)
		case OpRelease:
			err = s.ReleaseCell(cellID)
		case OpStats:
			if _, cerr := s.controlCell(cellID); cerr != nil {
				err = cerr
			} else {
				resp, err = json.Marshal(s.CellStats(cellID))
			}
		default:
			err = fmt.Errorf("%w: op %d", ErrControl, op)
		}
		status := ctrlStatusFor(err)
		if err != nil {
			resp = []byte(err.Error())
		}
		if werr := writeCtrlResponse(conn, status, uint16(cellID), resp); werr != nil {
			return
		}
	}
}

// writeCtrlResponse emits one response header + payload.
func writeCtrlResponse(w io.Writer, status uint8, cell uint16, payload []byte) error {
	var hdr [ctrlRespLen]byte
	copy(hdr[:4], ctrlRespMagic)
	hdr[4] = ctrlVersion
	hdr[5] = status
	binary.LittleEndian.PutUint16(hdr[6:8], cell)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	return writeCtrlPayload(w, payload)
}

// ControlClient is the coordinator's handle on one worker's control
// listener. Methods are safe for concurrent use (requests serialise on
// the connection).
type ControlClient struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialControl connects to a worker's control listener.
func DialControl(network, addr string) (*ControlClient, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &ControlClient{conn: conn}, nil
}

// NewControlClient wraps an existing connection (tests, in-process pipes).
func NewControlClient(conn net.Conn) *ControlClient {
	return &ControlClient{conn: conn}
}

// Close closes the control connection.
func (c *ControlClient) Close() error { return c.conn.Close() }

// roundTrip issues one request and reads its response.
//
//ltephy:coldpath
//ltephy:blocking-ok
func (c *ControlClient) roundTrip(op uint8, cell uint16, arg uint32, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [ctrlReqLen]byte
	copy(hdr[:4], ctrlReqMagic)
	hdr[4] = ctrlVersion
	hdr[5] = op
	binary.LittleEndian.PutUint16(hdr[6:8], cell)
	binary.LittleEndian.PutUint32(hdr[8:12], arg)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return nil, err
	}
	if err := writeCtrlPayload(c.conn, payload); err != nil {
		return nil, err
	}
	var rh [ctrlRespLen]byte
	if _, err := io.ReadFull(c.conn, rh[:]); err != nil {
		return nil, err
	}
	if string(rh[:4]) != ctrlRespMagic || rh[4] != ctrlVersion {
		return nil, fmt.Errorf("%w: bad response header", ErrControl)
	}
	resp, err := readCtrlPayload(c.conn, binary.LittleEndian.Uint32(rh[8:12]))
	if err != nil {
		return nil, err
	}
	if status := rh[5]; status != CtrlOK {
		return nil, ctrlError(status, string(resp))
	}
	return resp, nil
}

// Drain drains a cell; timeout <= 0 uses the worker's default.
func (c *ControlClient) Drain(cell uint16, timeout time.Duration) error {
	var ms uint32
	if timeout > 0 {
		ms = uint32(timeout.Milliseconds())
		if ms == 0 {
			ms = 1
		}
	}
	_, err := c.roundTrip(OpDrain, cell, ms, nil)
	return err
}

// Checkpoint serialises a drained cell's state.
func (c *ControlClient) Checkpoint(cell uint16) ([]byte, error) {
	return c.roundTrip(OpCheckpoint, cell, 0, nil)
}

// Restore installs a snapshot on the worker and opens the cell.
func (c *ControlClient) Restore(cell uint16, snapshot []byte) error {
	_, err := c.roundTrip(OpRestore, cell, 0, snapshot)
	return err
}

// Resume lifts a drain without migrating.
func (c *ControlClient) Resume(cell uint16) error {
	_, err := c.roundTrip(OpResume, cell, 0, nil)
	return err
}

// Release clears a migrated-away cell on the source worker.
func (c *ControlClient) Release(cell uint16) error {
	_, err := c.roundTrip(OpRelease, cell, 0, nil)
	return err
}

// Stats fetches one cell's serving counters.
func (c *ControlClient) Stats(cell uint16) (CellStats, error) {
	var st CellStats
	resp, err := c.roundTrip(OpStats, cell, 0, nil)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		return st, fmt.Errorf("%w: stats payload: %v", ErrControl, err)
	}
	return st, nil
}
