package fronthaul

import (
	"testing"

	"ltephy/internal/cost"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

func decide(a *Admission, seq int64, est []float64, prio []uint8) (Decision, []bool) {
	admit := make([]bool, len(est))
	d := a.Decide(seq, est, prio, admit)
	return d, admit
}

func TestAdmissionAdmitsAllUnderCapacity(t *testing.T) {
	a := &Admission{Capacity: 1, Burst: 2}
	for seq := int64(0); seq < 5; seq++ {
		d, admit := decide(a, seq, []float64{0.2, 0.3, 0.1}, []uint8{1, 2, 3})
		if d.Late || d.Overload || d.Admitted != 3 {
			t.Fatalf("seq %d: %+v", seq, d)
		}
		for i, ok := range admit {
			if !ok {
				t.Fatalf("seq %d: user %d not admitted", seq, i)
			}
		}
		// Summation order differs (offered in index order, admitted in
		// priority order), so compare within float tolerance.
		if diff := d.OfferedEst - d.AdmittedEst; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("seq %d: offered %g != admitted %g", seq, d.OfferedEst, d.AdmittedEst)
		}
	}
}

func TestAdmissionLateSubframe(t *testing.T) {
	a := &Admission{Capacity: 1, Burst: 1}
	if d, _ := decide(a, 10, []float64{0.1}, []uint8{0}); d.Late {
		t.Fatalf("first subframe marked late: %+v", d)
	}
	for _, seq := range []int64{10, 9, 0} {
		d, admit := decide(a, seq, []float64{0.1}, []uint8{0})
		if !d.Late || d.Admitted != 0 || admit[0] {
			t.Fatalf("seq %d: want late shed, got %+v admit=%v", seq, d, admit)
		}
	}
	if d, _ := decide(a, 11, []float64{0.1}, []uint8{0}); d.Late || d.Admitted != 1 {
		t.Fatalf("seq 11 after late frames: %+v", d)
	}
}

func TestAdmissionPriorityOrder(t *testing.T) {
	// Six users of cost 0.2 against a budget of 0.6: exactly the three
	// highest priorities are admitted; the tie at priority 5 breaks toward
	// the lower index.
	a := &Admission{Capacity: 0.6, Burst: 0.6}
	est := []float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.2}
	prio := []uint8{1, 5, 2, 5, 9, 0}
	d, admit := decide(a, 0, est, prio)
	want := []bool{false, true, false, true, true, false}
	if d.Admitted != 3 {
		t.Fatalf("admitted %d, want 3 (%+v)", d.Admitted, d)
	}
	for i := range admit {
		if admit[i] != want[i] {
			t.Fatalf("admit = %v, want %v", admit, want)
		}
	}
}

func TestAdmissionSkipsOversizedLowerPriority(t *testing.T) {
	// The greedy pass keeps scanning after a user that does not fit, so a
	// cheaper lower-priority user can still use the leftover budget.
	a := &Admission{Capacity: 0.5, Burst: 0.5}
	d, admit := decide(a, 0, []float64{0.4, 0.3, 0.1}, []uint8{3, 2, 1})
	if d.Admitted != 2 || !admit[0] || admit[1] || !admit[2] {
		t.Fatalf("admit = %v (%+v), want user 0 and 2", admit, d)
	}
}

func TestAdmissionOverloadShedsWholeSubframe(t *testing.T) {
	a := &Admission{Capacity: 0.1, Burst: 0.1}
	d, admit := decide(a, 0, []float64{0.5, 0.9}, []uint8{1, 0})
	if !d.Overload || d.Admitted != 0 || admit[0] || admit[1] {
		t.Fatalf("want overload shed, got %+v admit=%v", d, admit)
	}
	// An empty subframe is not an overload.
	if d, _ := decide(a, 1, nil, nil); d.Overload {
		t.Fatalf("empty subframe marked overload: %+v", d)
	}
}

func TestAdmissionBudgetBanksUpToBurst(t *testing.T) {
	a := &Admission{Capacity: 0.5, Burst: 1.0}
	// First subframe starts with a full burst.
	if d, _ := decide(a, 0, []float64{1.0}, []uint8{0}); d.Admitted != 1 {
		t.Fatalf("burst not granted on first subframe: %+v", d)
	}
	// Budget is now 0; one period refills 0.5 — not enough for a 0.8 user.
	if d, _ := decide(a, 1, []float64{0.8}, []uint8{0}); d.Admitted != 0 {
		t.Fatalf("refill exceeded capacity: %+v", d)
	}
	// The unspent 0.5 banks; the next period tops it up to Burst.
	if d, _ := decide(a, 2, []float64{0.8}, []uint8{0}); d.Admitted != 1 {
		t.Fatalf("banked budget not granted: %+v", d)
	}
	// A long idle gap banks at most Burst, never more.
	a.Decide(100, nil, nil, nil)
	if got := a.Budget(); got > a.Burst {
		t.Fatalf("budget %g exceeds burst %g", got, a.Burst)
	}
	if d, _ := decide(a, 101, []float64{0.9, 0.9}, []uint8{1, 0}); d.Admitted != 1 {
		t.Fatalf("after idle gap: %+v, want exactly one admitted", d)
	}
}

func TestAdmissionDeterministic(t *testing.T) {
	est := []float64{0.3, 0.1, 0.4, 0.2, 0.15}
	prio := []uint8{2, 7, 2, 7, 1}
	run := func() []Decision {
		a := &Admission{Capacity: 0.4, Burst: 0.8}
		var out []Decision
		for seq := int64(0); seq < 20; seq++ {
			d, _ := decide(a, seq, est, prio)
			out = append(out, d)
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("seq %d: %+v != %+v", i, first[i], second[i])
		}
	}
}

func TestCostPredictorScalesWithParams(t *testing.T) {
	p := NewCostPredictor(cost.Default(), 4, 8, 0.005)
	small := uplink.UserParams{ID: 0, PRB: 4, Layers: 1, Mod: modulation.QPSK}
	big := uplink.UserParams{ID: 1, PRB: 40, Layers: 4, Mod: modulation.QAM64}
	es, eb := p.EstimateUser(small), p.EstimateUser(big)
	if !(es > 0) || !(eb > es) {
		t.Fatalf("estimates not ordered: small=%g big=%g", es, eb)
	}
	// Doubling the workers halves the predicted activity share.
	p2 := NewCostPredictor(cost.Default(), 4, 16, 0.005)
	if got := p2.EstimateUser(big); got >= eb {
		t.Fatalf("more workers should lower the share: %g vs %g", got, eb)
	}
}
