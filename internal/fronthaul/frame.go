// Package fronthaul is the serving layer that turns the in-process
// benchmark receiver into a networked multi-cell eNodeB baseband: a
// length-prefixed, CRC-protected binary frame codec for subframe payloads
// (IQ grids + per-user scheduling parameters), a TCP/Unix-socket server
// sharding N cells across M scheduler pools, and an estimator-driven
// admission controller that sheds whole late subframes (LTE semantics: a
// late subframe is useless, so drop-and-count beats queue-and-miss) and
// degrades gracefully under overload by rejecting lowest-priority users
// first.
//
// # Wire format
//
// A frame is header + payload + trailer, all little-endian:
//
//	offset size field
//	0      4    magic "LTEF"
//	4      2    version (currently 1)
//	6      2    cell index
//	8      8    subframe sequence number (int64)
//	16     1    user count (<= MaxUsersPerFrame)
//	17     1    antenna count (1..MaxFrameAntennas)
//	18     2    flags (reserved, zero)
//	20     4    payload length in bytes
//	24     4    IEEE CRC-32 of header bytes 0..23
//
// The payload holds one record per user: a 16-byte user header
//
//	offset size field
//	0      2    user id
//	2      2    PRB count
//	4      1    layers
//	5      1    modulation scheme
//	6      1    priority (higher = more important)
//	7      1    user flags (bit 0 = DTX: scheduled but not transmitting;
//	            remaining bits reserved, zero)
//	8      8    noise variance (float64 bits)
//
// followed by the user's frequency-domain receive grid as complex128
// samples (16 bytes each, real then imaginary float64 bits): the two
// slots' reference symbols RefRx[slot][antenna][k], then the twelve data
// symbols DataRx[slot][sym][antenna][k], k running over PRB*12
// subcarriers — 14*antennas*PRB*12 samples in total. The trailer is the
// IEEE CRC-32 of the whole payload.
//
// Every frame is answered by one fixed-size ack (see Ack) reporting
// completion or the shed disposition, so a generator can account for
// every subframe it offered.
package fronthaul

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"ltephy/internal/uplink"
)

// Wire-format limits and sizes.
const (
	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 28
	// UserHeaderLen is the fixed per-user record header size in bytes.
	UserHeaderLen = 16
	// TrailerLen is the payload CRC trailer size in bytes.
	TrailerLen = 4
	// AckLen is the fixed ack size in bytes.
	AckLen = 16
	// FrameVersion is the wire version this codec speaks.
	FrameVersion = 1
	// MaxUsersPerFrame bounds the user records one frame may carry. It is
	// deliberately larger than uplink.MaxUsers: overload experiments offer
	// several subframes' worth of users in one frame and let admission
	// reject the excess.
	MaxUsersPerFrame = 64
	// MaxFrameAntennas bounds the antenna count a frame may declare,
	// matching the receiver's limit.
	MaxFrameAntennas = 8
	// DefaultMaxPayload is the default payload-size cap (the full 200-PRB
	// pool at 8 antennas is ~43 MiB).
	DefaultMaxPayload = 64 << 20

	frameMagic = uint32('L') | uint32('T')<<8 | uint32('E')<<16 | uint32('F')<<24
	ackMagic   = uint32('L') | uint32('T')<<8 | uint32('E')<<16 | uint32('A')<<24

	// samplesPerUserUnit is the sample count per (antenna x subcarrier):
	// 2 reference symbols + 12 data symbols.
	samplesPerUserUnit = uplink.SlotsPerSubframe * (1 + uplink.DataSymbolsPerSlot)
)

// Per-user record flags (byte 7 of the user header).
const (
	// UserFlagDTX marks a scheduled-but-absent user: the scheduler granted
	// the user but it transmitted nothing. The record still carries a full
	// sample grid (wire size stays a pure function of PRB x antennas); the
	// ingest drops DTX users before admission and counts them in the KPI
	// Dtx bucket instead of decoding noise.
	UserFlagDTX = 0x01

	// UserFlagRVMask (bits 1-2) carries the transmission's redundancy
	// version (0-3): 0 marks a first transmission, nonzero values mark
	// HARQ retransmissions rate-matched at that RV. Servers running the
	// HARQ ledger soft-combine retransmissions; everything else ignores
	// the bits (the decode is RV-aware through the transport format
	// regardless).
	UserFlagRVMask  = 0x06
	UserFlagRVShift = 1

	// userFlagsKnown masks the flag bits this codec understands; any other
	// set bit rejects the record.
	userFlagsKnown = UserFlagDTX | UserFlagRVMask
)

// Decode errors. These are sentinels: the ingest hot path must not box
// fresh error values per frame. A decode error means the stream framing
// can no longer be trusted, so the connection is closed.
var (
	ErrMagic      = errors.New("fronthaul: bad frame magic")
	ErrVersion    = errors.New("fronthaul: unsupported frame version")
	ErrHeaderCRC  = errors.New("fronthaul: header CRC mismatch")
	ErrPayloadCRC = errors.New("fronthaul: payload CRC mismatch")
	ErrLimits     = errors.New("fronthaul: frame exceeds configured limits")
	ErrUserRecord = errors.New("fronthaul: invalid user record")
	ErrTruncated  = errors.New("fronthaul: payload length does not match user records")
	ErrAckMagic   = errors.New("fronthaul: bad ack magic")
)

// Header is a decoded frame header.
type Header struct {
	Version    uint16
	Cell       uint16
	Seq        int64
	NUsers     uint8
	Antennas   uint8
	Flags      uint16
	PayloadLen uint32
}

// UserSampleBytes returns the encoded size of one user's sample grid.
func UserSampleBytes(prb, antennas int) int {
	return samplesPerUserUnit * antennas * prb * uplink.SubcarriersPerPRB * 16
}

// UserRecordBytes returns the encoded size of one full user record.
func UserRecordBytes(prb, antennas int) int {
	return UserHeaderLen + UserSampleBytes(prb, antennas)
}

// ParseHeader decodes and validates a frame header against the given
// limits (maxUsers <= MaxUsersPerFrame, maxPayload in bytes).
//
//ltephy:hotpath — runs once per ingested frame in the serving loop.
func ParseHeader(b *[FrameHeaderLen]byte, maxUsers, maxPayload int) (Header, error) {
	var h Header
	if binary.LittleEndian.Uint32(b[0:4]) != frameMagic {
		return h, ErrMagic
	}
	if crc32.ChecksumIEEE(b[0:24]) != binary.LittleEndian.Uint32(b[24:28]) {
		return h, ErrHeaderCRC
	}
	h.Version = binary.LittleEndian.Uint16(b[4:6])
	if h.Version != FrameVersion {
		return h, ErrVersion
	}
	h.Cell = binary.LittleEndian.Uint16(b[6:8])
	h.Seq = int64(binary.LittleEndian.Uint64(b[8:16]))
	h.NUsers = b[16]
	h.Antennas = b[17]
	h.Flags = binary.LittleEndian.Uint16(b[18:20])
	h.PayloadLen = binary.LittleEndian.Uint32(b[20:24])
	if int(h.NUsers) > maxUsers || h.NUsers > MaxUsersPerFrame ||
		h.Antennas < 1 || h.Antennas > MaxFrameAntennas ||
		h.Flags != 0 || h.Seq < 0 ||
		int64(h.PayloadLen) > int64(maxPayload) ||
		int(h.PayloadLen) < int(h.NUsers)*UserHeaderLen {
		return h, ErrLimits
	}
	return h, nil
}

// putHeader encodes h into b, computing the header CRC.
func putHeader(b []byte, h Header) {
	binary.LittleEndian.PutUint32(b[0:4], frameMagic)
	binary.LittleEndian.PutUint16(b[4:6], h.Version)
	binary.LittleEndian.PutUint16(b[6:8], h.Cell)
	binary.LittleEndian.PutUint64(b[8:16], uint64(h.Seq))
	b[16] = h.NUsers
	b[17] = h.Antennas
	binary.LittleEndian.PutUint16(b[18:20], h.Flags)
	binary.LittleEndian.PutUint32(b[20:24], h.PayloadLen)
	binary.LittleEndian.PutUint32(b[24:28], crc32.ChecksumIEEE(b[0:24]))
}

// FrameUser is one user to encode: the receive data plus the serving
// metadata that exists only at the fronthaul layer.
type FrameUser struct {
	Data     *uplink.UserData
	Priority uint8
	// DTX marks the user as scheduled-but-absent (UserFlagDTX on the
	// wire): the grid is carried but the receiver must not decode it.
	DTX bool
}

// AppendFrame encodes one subframe as a wire frame and appends it to dst,
// returning the extended slice. All users must carry the same antenna
// count. The generator reuses one buffer across frames, so steady-state
// encoding does not allocate once the buffer has reached its high-water
// size.
func AppendFrame(dst []byte, cell uint16, seq int64, users []FrameUser) ([]byte, error) {
	if len(users) > MaxUsersPerFrame {
		return dst, ErrLimits
	}
	ant := 0
	payload := 0
	for _, u := range users {
		a := u.Data.Antennas()
		if ant == 0 {
			ant = a
		} else if a != ant {
			return dst, errors.New("fronthaul: mixed antenna counts in one frame")
		}
		payload += UserRecordBytes(u.Data.Params.PRB, a)
	}
	if ant == 0 {
		ant = 1 // an empty frame still declares a valid antenna count
	}
	h := Header{
		Version:    FrameVersion,
		Cell:       cell,
		Seq:        seq,
		NUsers:     uint8(len(users)),
		Antennas:   uint8(ant),
		PayloadLen: uint32(payload),
	}
	start := len(dst)
	need := FrameHeaderLen + payload + TrailerLen
	dst = append(dst, make([]byte, need)...)
	b := dst[start:]
	putHeader(b, h)
	off := FrameHeaderLen
	for _, u := range users {
		off = putUser(b, off, u)
	}
	binary.LittleEndian.PutUint32(b[off:off+4],
		crc32.ChecksumIEEE(b[FrameHeaderLen:FrameHeaderLen+payload]))
	return dst, nil
}

// putUser encodes one user record at b[off:], returning the new offset.
func putUser(b []byte, off int, u FrameUser) int {
	p := u.Data.Params
	binary.LittleEndian.PutUint16(b[off:], uint16(p.ID))
	binary.LittleEndian.PutUint16(b[off+2:], uint16(p.PRB))
	b[off+4] = uint8(p.Layers)
	b[off+5] = uint8(p.Mod)
	b[off+6] = u.Priority
	b[off+7] = (u.Data.RV & 3) << UserFlagRVShift
	if u.DTX {
		b[off+7] |= UserFlagDTX
	}
	binary.LittleEndian.PutUint64(b[off+8:], math.Float64bits(u.Data.NoiseVar))
	off += UserHeaderLen
	for s := 0; s < uplink.SlotsPerSubframe; s++ {
		for _, row := range u.Data.RefRx[s] {
			off = putSamples(b, off, row)
		}
	}
	for s := 0; s < uplink.SlotsPerSubframe; s++ {
		for m := 0; m < uplink.DataSymbolsPerSlot; m++ {
			for _, row := range u.Data.DataRx[s][m] {
				off = putSamples(b, off, row)
			}
		}
	}
	return off
}

func putSamples(b []byte, off int, row []complex128) int {
	for _, c := range row {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(real(c)))
		binary.LittleEndian.PutUint64(b[off+8:], math.Float64bits(imag(c)))
		off += 16
	}
	return off
}

// Ack statuses.
const (
	// AckDone: the subframe was admitted (fully or partially) and all
	// admitted users completed processing.
	AckDone uint8 = iota
	// AckShedLate: the whole subframe was shed because its sequence number
	// was not newer than the cell's last admitted subframe.
	AckShedLate
	// AckShedOverload: the whole subframe was shed because the admission
	// budget could not fit even its highest-priority user.
	AckShedOverload
	// AckShedBackpressure: the whole subframe was shed because the
	// connection had no free decode slot (only with Config.ShedOnBackpressure).
	AckShedBackpressure
	// AckDuplicate: the subframe's sequence was not newer than the cell's
	// last admitted subframe — the frame is a replay (reconnect or
	// migration) of work already accounted for. Unlike the shed statuses
	// it is NOT counted in the KPI Skipped bucket: the original pass
	// already placed every user in exactly one bucket, so counting the
	// replay would double-book.
	AckDuplicate
	// AckRedirect: the cell is draining or has migrated off this process.
	// The frame was not processed and not KPI-counted; the generator must
	// re-resolve the cell's placement and replay the frame to the new
	// owner.
	AckRedirect
)

// AckStatusNames are the exporter labels for ack statuses.
var AckStatusNames = [6]string{"done", "shed_late", "shed_overload", "shed_backpressure", "duplicate", "redirect"}

// Ack is the per-frame response:
//
//	offset size field
//	0      4    magic "LTEA"
//	4      2    cell index
//	6      1    status (AckDone..AckRedirect)
//	7      1    users accepted
//	8      8    subframe sequence number (int64)
type Ack struct {
	Cell          uint16
	Status        uint8
	UsersAccepted uint8
	Seq           int64
}

// PutAck encodes a into b.
func PutAck(b *[AckLen]byte, a Ack) {
	binary.LittleEndian.PutUint32(b[0:4], ackMagic)
	binary.LittleEndian.PutUint16(b[4:6], a.Cell)
	b[6] = a.Status
	b[7] = a.UsersAccepted
	binary.LittleEndian.PutUint64(b[8:16], uint64(a.Seq))
}

// ParseAck decodes an ack.
func ParseAck(b *[AckLen]byte) (Ack, error) {
	if binary.LittleEndian.Uint32(b[0:4]) != ackMagic {
		return Ack{}, ErrAckMagic
	}
	a := Ack{
		Cell:          binary.LittleEndian.Uint16(b[4:6]),
		Status:        b[6],
		UsersAccepted: b[7],
		Seq:           int64(binary.LittleEndian.Uint64(b[8:16])),
	}
	if a.Status > AckRedirect {
		return Ack{}, ErrAckMagic
	}
	return a, nil
}
