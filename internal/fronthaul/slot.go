package fronthaul

import (
	"ltephy/internal/phy/workspace"
	"ltephy/internal/sched"
	"ltephy/internal/uplink"
)

// Slot is one reusable decode slot: the arena the admitted users' sample
// grids are carved from, the preallocated UserData structs and their
// antenna-row headers, and the subframe + completion hook handed to the
// scheduler. A connection owns a small freelist of slots; a slot cycles
//
//	freelist -> decode/admit/fill -> dispatch -> (subframe completes)
//	-> ack -> arena Reset -> freelist
//
// so the number of slots bounds the frames a connection may have in
// flight, and steady-state ingest touches no heap.
type Slot struct {
	ws    *workspace.Arena
	users []uplink.UserData
	ptrs  []*uplink.UserData
	sf    uplink.Subframe
	fin   *sched.SubframeFin

	// Completion context, set at dispatch.
	cell       uint16
	seq        int64
	admitted   uint8
	dispatchNs int64
}

// newSlot builds a slot for up to maxUsers users at the given antenna
// count, preallocating every slice header the decode path needs.
func newSlot(maxUsers, antennas int) *Slot {
	s := &Slot{
		ws:    workspace.New(),
		users: make([]uplink.UserData, maxUsers),
		ptrs:  make([]*uplink.UserData, maxUsers),
	}
	for i := range s.users {
		u := &s.users[i]
		for sl := 0; sl < uplink.SlotsPerSubframe; sl++ {
			u.RefRx[sl] = make([][]complex128, antennas)
			for m := 0; m < uplink.DataSymbolsPerSlot; m++ {
				u.DataRx[sl][m] = make([][]complex128, antennas)
			}
		}
		s.ptrs[i] = u
	}
	return s
}

// arm prepares the slot for dispatch of k admitted users of subframe
// (cell, seq).
//
//ltephy:hotpath — runs once per admitted frame in the serving loop.
func (s *Slot) arm(cell uint16, seq int64, k int, now int64) {
	s.cell = cell
	s.seq = seq
	s.admitted = uint8(k)
	s.dispatchNs = now
	s.sf.Seq = seq
	s.sf.Cell = cell
	s.sf.Users = s.ptrs[:k]
}

// recycle resets the slot's arena for reuse. The slice headers persist;
// only the carves are released.
func (s *Slot) recycle() {
	s.ws.Reset()
	s.sf.Users = nil
}
