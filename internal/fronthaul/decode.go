package fronthaul

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/uplink"
)

// UserRecord is the first-pass decode of one user record: the scheduling
// parameters the admission controller needs, plus the offset of the
// user's sample grid within the payload so the second pass can
// materialise only the admitted users.
type UserRecord struct {
	Params   uplink.UserParams
	Priority uint8
	// DTX reports UserFlagDTX: the user was scheduled but transmitted
	// nothing, so it must be counted (KPI Dtx) rather than decoded.
	DTX bool
	// RV is the transmission's redundancy version (wire flag bits 1-2).
	RV       uint8
	NoiseVar float64
	// off is the payload offset of the user's sample block.
	off int
}

// VerifyPayload checks the payload CRC trailer. trailer must be the
// 4 bytes following the payload on the wire.
//
//ltephy:hotpath — runs once per ingested frame in the serving loop.
func VerifyPayload(payload []byte, trailer *[TrailerLen]byte) error {
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer[:]) {
		return ErrPayloadCRC
	}
	return nil
}

// ParseUsers decodes the payload's user records into recs (first pass: no
// sample conversion), validating each against the receiver's parameter
// limits and checking that the declared payload length exactly covers the
// records. Returns the user count.
//
//ltephy:hotpath — runs once per ingested frame in the serving loop.
func ParseUsers(h Header, payload []byte, recs *[MaxUsersPerFrame]UserRecord) (int, error) {
	n := int(h.NUsers)
	ant := int(h.Antennas)
	off := 0
	for i := 0; i < n; i++ {
		if off+UserHeaderLen > len(payload) {
			return 0, ErrTruncated
		}
		r := &recs[i]
		r.Params.ID = int(binary.LittleEndian.Uint16(payload[off:]))
		r.Params.PRB = int(binary.LittleEndian.Uint16(payload[off+2:]))
		r.Params.Layers = int(payload[off+4])
		r.Params.Mod = modulation.Scheme(payload[off+5])
		r.Priority = payload[off+6]
		r.DTX = payload[off+7]&UserFlagDTX != 0
		r.RV = (payload[off+7] & UserFlagRVMask) >> UserFlagRVShift
		r.NoiseVar = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		if payload[off+7]&^byte(userFlagsKnown) != 0 || r.Params.Validate() != nil ||
			r.Params.Layers > ant ||
			!(r.NoiseVar >= 0) || math.IsInf(r.NoiseVar, 1) {
			return 0, ErrUserRecord
		}
		off += UserHeaderLen
		r.off = off
		off += UserSampleBytes(r.Params.PRB, ant)
		if off > len(payload) {
			return 0, ErrTruncated
		}
	}
	if off != len(payload) {
		return 0, ErrTruncated
	}
	return n, nil
}

// fillUser materialises one admitted user into dst: parameters are copied
// and the sample grid is decoded from the wire payload into carves from
// the slot's arena. dst's RefRx/DataRx antenna-row headers were
// preallocated at slot construction; only the sample planes are carved
// here, so the steady-state fill performs no heap allocation. The carves
// live until the subframe completes and the slot's arena is Reset;
// lifetime is the slot freelist's contract.
//
//ltephy:hotpath — runs once per admitted user in the serving loop.
//ltephy:owns-scratch — carves outlive this frame by design (see above).
func fillUser(dst *uplink.UserData, ws *workspace.Arena, h Header, payload []byte, rec UserRecord) {
	dst.Params = rec.Params
	dst.NoiseVar = rec.NoiseVar
	dst.RV = rec.RV
	dst.Payload = nil
	dst.Channel = nil
	ant := int(h.Antennas)
	n := rec.Params.Subcarriers()
	off := rec.off
	for s := 0; s < uplink.SlotsPerSubframe; s++ {
		rows := dst.RefRx[s][:ant]
		for a := 0; a < ant; a++ {
			rows[a] = ws.Complex(n)
			off = getSamples(payload, off, rows[a])
		}
		dst.RefRx[s] = rows
	}
	for s := 0; s < uplink.SlotsPerSubframe; s++ {
		for m := 0; m < uplink.DataSymbolsPerSlot; m++ {
			rows := dst.DataRx[s][m][:ant]
			for a := 0; a < ant; a++ {
				rows[a] = ws.Complex(n)
				off = getSamples(payload, off, rows[a])
			}
			dst.DataRx[s][m] = rows
		}
	}
}

// getSamples decodes len(dst) complex128 samples from b[off:] into dst,
// returning the new offset.
//
//ltephy:hotpath — the per-plane inner loop of the frame decode.
func getSamples(b []byte, off int, dst []complex128) int {
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:]))
		dst[i] = complex(re, im)
		off += 16
	}
	return off
}
