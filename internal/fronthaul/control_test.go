package fronthaul

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"ltephy/internal/obs/kpi"
	"ltephy/internal/uplink"
)

// startControl brings up a control listener on an existing server and
// returns a connected client.
func startControl(t *testing.T, srv *Server) *ControlClient {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.ServeControl(ln)
	c, err := DialControl("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("DialControl: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// controlServerConfig is a small single-cell server with KPI recording
// on, shared by the control-plane tests.
func controlServerConfig(ant int) Config {
	return Config{
		Cells:          1,
		Workers:        1,
		Receiver:       func() uplink.ReceiverConfig { c := uplink.DefaultConfig(); c.Antennas = ant; return c }(),
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 1e-3},
		KPISampling:    1,
	}
}

// TestCheckpointCodecRoundTrip: Encode/Decode is the identity, the
// output is deterministic, and corruption is rejected.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	ck := &CellCheckpoint{
		Cell:        3,
		Admission:   AdmissionState{LastSeq: 41, Budget: 0.625, Started: true},
		OfferedEst:  12.5,
		AdmittedEst: 10.25,
		GrantedEst:  11,
		KPI: kpi.CellState{
			FirstSeq: 1, LastSeq: 41, Overflow: 2,
			Cell: kpi.Counters{CrcPass: 100, CrcFail: 7, Dtx: 3, Skipped: 9, Bits: 123456},
			Users: []kpi.UserCounters{
				{User: 0, Counters: kpi.Counters{CrcPass: 60, Bits: 70000}},
				{User: 5, Counters: kpi.Counters{CrcFail: 7, Skipped: 9}},
			},
		},
		HARQ: []HARQState{
			{User: 5, PRB: 6, Layers: 1, Mod: 4, Rounds: 2, Mother: []float64{0.5, -1.25, 3}},
		},
	}
	b := ck.Encode()
	if !bytes.Equal(b, ck.Encode()) {
		t.Fatalf("encoding is not deterministic")
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if got.Cell != ck.Cell || got.Admission != ck.Admission ||
		got.OfferedEst != ck.OfferedEst || got.AdmittedEst != ck.AdmittedEst ||
		got.GrantedEst != ck.GrantedEst {
		t.Fatalf("header fields diverged: %+v vs %+v", got, ck)
	}
	if !bytes.Equal(got.Encode(), b) {
		t.Fatalf("re-encode of the decoded checkpoint differs")
	}

	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x40
		if _, err := DecodeCheckpoint(bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	if _, err := DecodeCheckpoint(b[:8]); err == nil {
		t.Fatalf("truncated snapshot accepted")
	}
}

// TestControlMigration drives a full migration over the wire protocol:
// drain + checkpoint on the source, restore on the target, release on
// the source — and the target continues the sequence space exactly
// where the source stopped (a replay answers AckDuplicate).
func TestControlMigration(t *testing.T) {
	const ant = 2
	src, srcAddr := startServer(t, controlServerConfig(ant))
	dst, dstAddr := startServer(t, controlServerConfig(ant))
	srcCtl := startControl(t, src)
	dstCtl := startControl(t, dst)

	users := genFrameUsers(t, ant, []int{2})
	rc := dialRaw(t, srcAddr)
	for seq := int64(0); seq < 3; seq++ {
		frame, err := AppendFrame(nil, 0, seq, users)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		rc.send(frame)
		if a, err := rc.readAck(); err != nil || a.Status != AckDone {
			t.Fatalf("seq %d: ack=%+v err=%v", seq, a, err)
		}
	}

	if err := srcCtl.Drain(0, time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	snap, err := srcCtl.Checkpoint(0)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := dstCtl.Restore(0, snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := srcCtl.Release(0); err != nil {
		t.Fatalf("Release: %v", err)
	}

	// The drained source redirects stragglers.
	frame, err := AppendFrame(nil, 0, 3, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	rc.send(frame)
	if a, err := rc.readAck(); err != nil || a.Status != AckRedirect {
		t.Fatalf("straggler on source: ack=%+v err=%v", a, err)
	}

	// The target continues the sequence space: a replay of seq 2 is a
	// duplicate, seq 3 is fresh.
	rd := dialRaw(t, dstAddr)
	replay, err := AppendFrame(nil, 0, 2, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	rd.send(replay)
	if a, err := rd.readAck(); err != nil || a.Status != AckDuplicate {
		t.Fatalf("replay on target: ack=%+v err=%v", a, err)
	}
	rd.send(frame)
	if a, err := rd.readAck(); err != nil || a.Status != AckDone {
		t.Fatalf("fresh seq on target: ack=%+v err=%v", a, err)
	}

	// Exactly-once across the pair: the released source holds no KPI,
	// the target holds the full history.
	if st := src.KPI().ExportCell(0); !st.Cell.IsZero() {
		t.Fatalf("source KPI not cleared by release: %+v", st.Cell)
	}
	total := dst.KPI().ExportCell(0).Cell
	if got := total.CrcPass + total.CrcFail; got != 4 {
		t.Fatalf("target KPI blocks = %d, want 4 (3 migrated + 1 fresh)", got)
	}

	// Stats round-trips over the control socket too.
	st, err := dstCtl.Stats(0)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.FramesAccepted != 1 || st.FramesDuplicate != 1 {
		t.Fatalf("target stats: %+v", st)
	}
}

// TestControlErrors maps server-side failures onto typed client errors.
func TestControlErrors(t *testing.T) {
	srv, _ := startServer(t, controlServerConfig(2))
	ctl := startControl(t, srv)

	if _, err := ctl.Checkpoint(0); !errors.Is(err, ErrNotDraining) {
		t.Fatalf("checkpoint of a live cell: %v, want ErrNotDraining", err)
	}
	if err := ctl.Drain(9, time.Second); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("drain of unknown cell: %v, want ErrUnknownCell", err)
	}
	if err := ctl.Restore(0, []byte("not a snapshot")); err == nil {
		t.Fatalf("restore of garbage succeeded")
	}
	if _, err := ctl.Stats(7); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("stats of unknown cell: %v, want ErrUnknownCell", err)
	}
	// The connection survives error responses.
	if err := ctl.Drain(0, time.Second); err != nil {
		t.Fatalf("drain after errors: %v", err)
	}
	if err := ctl.Resume(0); err != nil {
		t.Fatalf("resume: %v", err)
	}
}

// TestReplayAfterConnLossIdempotent is the fronthaul ack path under
// connection loss mid-subframe: the generator's connection dies after
// frames were processed (and one frame is torn mid-write), the server
// neither blocks nor corrupts, and a full replay on a fresh connection
// is answered AckDuplicate without double-counting a single KPI block.
func TestReplayAfterConnLossIdempotent(t *testing.T) {
	const ant = 2
	srv, addr := startServer(t, controlServerConfig(ant))
	users := genFrameUsers(t, ant, []int{2})

	frames := make([][]byte, 5)
	for seq := range frames {
		f, err := AppendFrame(nil, 0, int64(seq), users)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		frames[seq] = f
	}

	rc := dialRaw(t, addr)
	for seq, f := range frames {
		rc.send(f)
		if a, err := rc.readAck(); err != nil || a.Status != AckDone {
			t.Fatalf("seq %d: ack=%+v err=%v", seq, a, err)
		}
	}
	// Tear the connection mid-subframe: half a header, then a hard close.
	rc.send(frames[0][:FrameHeaderLen/2])
	rc.conn.Close()

	before := srv.KPI().ExportCell(0).Cell

	// Fresh connection, full replay: every frame is a known duplicate.
	rc2 := dialRaw(t, addr)
	for _, f := range frames {
		rc2.send(f)
	}
	for i := range frames {
		a, err := rc2.readAck()
		if err != nil {
			t.Fatalf("replay ack %d: %v", i, err)
		}
		if a.Status != AckDuplicate {
			t.Fatalf("replay ack %d: %+v, want duplicate", i, a)
		}
	}
	// And the stream is still live for new work.
	f, err := AppendFrame(nil, 0, 5, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	rc2.send(f)
	if a, err := rc2.readAck(); err != nil || a.Status != AckDone {
		t.Fatalf("fresh seq after replay: ack=%+v err=%v", a, err)
	}

	after := srv.KPI().ExportCell(0).Cell
	if got := after.CrcPass + after.CrcFail - before.CrcPass - before.CrcFail; got != 1 {
		t.Fatalf("replay changed KPI by %d blocks, want 1 (the fresh frame only)", got)
	}
	st := srv.CellStats(0)
	if st.FramesDuplicate != 5 || st.FramesAccepted != 6 {
		t.Fatalf("cell stats: %+v, want 5 duplicates and 6 accepted", st)
	}
}

// TestDrainResumeCycle: a drained cell redirects; after Resume the
// redirect is sticky on the old connection (only a fresh connection's
// in-order replay may continue the cell's sequence space — otherwise a
// later in-flight frame admitted on the old connection would advance
// duplicate detection past the redirected one, and its replay would be
// swallowed uncounted), while a reconnect is admitted.
func TestDrainResumeCycle(t *testing.T) {
	const ant = 2
	srv, addr := startServer(t, controlServerConfig(ant))
	ctl := startControl(t, srv)
	users := genFrameUsers(t, ant, []int{2})
	frame, err := AppendFrame(nil, 0, 0, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}

	if err := ctl.Drain(0, time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	rc := dialRaw(t, addr)
	rc.send(frame)
	if a, err := rc.readAck(); err != nil || a.Status != AckRedirect {
		t.Fatalf("drained cell: ack=%+v err=%v", a, err)
	}
	if err := ctl.Resume(0); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	// Same connection: the redirect stays sticky even after the drain
	// lifted.
	rc.send(frame)
	if a, err := rc.readAck(); err != nil || a.Status != AckRedirect {
		t.Fatalf("resumed cell, old conn: ack=%+v err=%v, want redirect", a, err)
	}
	// Fresh connection: the replayed sequence is admitted.
	rc2 := dialRaw(t, addr)
	rc2.send(frame)
	if a, err := rc2.readAck(); err != nil || a.Status != AckDone {
		t.Fatalf("resumed cell, new conn: ack=%+v err=%v", a, err)
	}
	if st := srv.CellStats(0); st.FramesRedirected != 2 || st.FramesAccepted != 1 {
		t.Fatalf("cell stats: %+v", st)
	}
}
