package fronthaul

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ltephy/internal/obs"
	"ltephy/internal/params"
	"ltephy/internal/rng"
	"ltephy/internal/sched"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// GenConfig configures the loopback load generator: one connection per
// cell replaying the paper's Fig. 6 parameter model as wire frames at a
// configurable rate and offered-load multiplier.
type GenConfig struct {
	// Network and Addr locate the server ("tcp"/"unix").
	Network, Addr string
	// Cells is the number of cells to drive (cell indices 0..Cells-1).
	Cells int
	// Subframes is the frame count sent per cell.
	Subframes int
	// Interval is the wall-clock gap between frames per cell: Delta for
	// real-time replay, Delta/2 for 2x real-time, 0 for as fast as the
	// transport allows. (Admission runs in virtual sequence time, so the
	// rate pressures deadlines and transport, not shedding.)
	Interval time.Duration
	// Load multiplies the offered work per subframe: each frame
	// concatenates ~Load parameter-model draws (fractions alternate), so
	// Load 4 offers four subframes' worth of users per period.
	Load float64
	// Seed drives the parameter model (per cell: Seed+cell) and signal
	// synthesis.
	Seed uint64
	// MaxPRB clamps per-user PRBs (0 = no clamp), scaling DSP to host
	// speed exactly like lte-bench does.
	MaxPRB int
	// MaxUsers caps the users per frame after load concatenation.
	// Defaults to MaxUsersPerFrame.
	MaxUsers int
	// DTXProb flags each offered user DTX (scheduled-but-absent) with
	// this probability, exercising the receiver's DTX accounting. Drawn
	// from a per-cell rng stream so runs are reproducible.
	DTXProb float64
	// TX configures signal synthesis; TX.Receiver must match the server's
	// receiver (antenna count).
	TX tx.Config
	// CacheSets is the input-data realisation rotation (sched.Dispatcher
	// semantics). Defaults to 4.
	CacheSets int
	// Priority assigns each user's admission priority. Nil defaults to
	// "earlier slot = higher priority", which makes overload degradation
	// deterministic and observable.
	Priority func(cellID uint16, seq int64, slot int) uint8
	// Timeout bounds the wait for the final acks after the last frame is
	// sent. Defaults to 60s.
	Timeout time.Duration
}

// GenStats aggregates the generator's view of a loopback run. Every sent
// frame is accounted for by exactly one ack, so Acked == Sent and
// BadAcks == 0 together certify zero frame corruption end to end.
type GenStats struct {
	Sent, Acked                                    int64
	Done, ShedLate, ShedOverload, ShedBackpressure int64
	// Duplicate counts replay acks (AckDuplicate) and Redirected counts
	// drain/migration acks (AckRedirect) — both normal under fleet
	// operation, both zero in a plain loopback run.
	Duplicate, Redirected    int64
	UsersSent, UsersAccepted int64
	// UsersDTX counts users the generator flagged DTX (a subset of
	// UsersSent).
	UsersDTX int64
	// BadAcks counts acks that failed to parse or referenced an unknown
	// sequence number.
	BadAcks int64
	// P50/P90/P99/P999/Max are percentiles of the send-to-done-ack latency
	// of completed subframes (P999 = p99.9, the fleet harness's tail
	// metric).
	P50, P90, P99, P999, Max time.Duration
}

// ShedFrames sums the shed dispositions.
func (g GenStats) ShedFrames() int64 { return g.ShedLate + g.ShedOverload + g.ShedBackpressure }

// String renders the stats in the machine-greppable key=value form the
// serve-smoke CI job asserts on.
func (g GenStats) String() string {
	return fmt.Sprintf(
		"sent=%d acked=%d done=%d shed_late=%d shed_overload=%d shed_backpressure=%d "+
			"duplicate=%d redirected=%d "+
			"users_sent=%d users_accepted=%d users_dtx=%d corrupt=%d "+
			"p50=%v p90=%v p99=%v p999=%v max=%v",
		g.Sent, g.Acked, g.Done, g.ShedLate, g.ShedOverload, g.ShedBackpressure,
		g.Duplicate, g.Redirected,
		g.UsersSent, g.UsersAccepted, g.UsersDTX, g.BadAcks,
		g.P50, g.P90, g.P99, g.P999, g.Max)
}

// cellGen is one cell's generator state. The sender goroutine writes
// Sent/UsersSent and sendNs; the ack-reader goroutine writes the rest.
// sendNs entries are atomics because the only ordering between a send
// and its ack is the network round-trip, which the race detector cannot
// see through.
type cellGen struct {
	cfg       GenConfig
	cellID    uint16
	disp      *sched.Dispatcher
	stats     GenStats
	latencies []int64
	sendNs    []atomic.Int64
	err       error
}

// RunLoopback drives the server at cfg.Addr with one connection per cell
// and returns the aggregated stats. The first per-cell error aborts the
// aggregate (partial stats are still returned).
//
// Spawns one generator goroutine per cell, bracketed by wg.Add before
// the spawn and a deferred Done; wg.Wait joins them all before stats
// are aggregated.
//
//ltephy:spawn-point
func RunLoopback(cfg GenConfig) (GenStats, error) {
	if cfg.Cells <= 0 {
		cfg.Cells = 1
	}
	if cfg.Subframes <= 0 {
		cfg.Subframes = 1
	}
	if cfg.Load <= 0 {
		cfg.Load = 1
	}
	if cfg.MaxUsers <= 0 || cfg.MaxUsers > MaxUsersPerFrame {
		cfg.MaxUsers = MaxUsersPerFrame
	}
	if cfg.CacheSets <= 0 {
		cfg.CacheSets = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.Priority == nil {
		cfg.Priority = func(_ uint16, _ int64, slot int) uint8 {
			if slot >= 255 {
				return 0
			}
			return uint8(255 - slot)
		}
	}
	if cfg.TX.Receiver.Antennas == 0 {
		cfg.TX = tx.DefaultConfig()
	}

	// One shared dispatcher: the input-data cache is keyed by parameters
	// and set index, so cells reuse realisations instead of regenerating.
	disp := sched.NewDispatcher(sched.DispatcherConfig{
		Delta:     time.Millisecond,
		TX:        cfg.TX,
		CacheSets: cfg.CacheSets,
		Seed:      cfg.Seed,
	})

	gens := make([]*cellGen, cfg.Cells)
	var wg sync.WaitGroup
	for c := range gens {
		g := &cellGen{
			cfg:    cfg,
			cellID: uint16(c),
			disp:   disp,
			sendNs: make([]atomic.Int64, cfg.Subframes),
		}
		gens[c] = g
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.err = g.run()
		}()
	}
	wg.Wait()

	var total GenStats
	var lats []int64
	var firstErr error
	for _, g := range gens {
		total.Sent += g.stats.Sent
		total.Acked += g.stats.Acked
		total.Done += g.stats.Done
		total.ShedLate += g.stats.ShedLate
		total.ShedOverload += g.stats.ShedOverload
		total.ShedBackpressure += g.stats.ShedBackpressure
		total.Duplicate += g.stats.Duplicate
		total.Redirected += g.stats.Redirected
		total.UsersSent += g.stats.UsersSent
		total.UsersAccepted += g.stats.UsersAccepted
		total.UsersDTX += g.stats.UsersDTX
		total.BadAcks += g.stats.BadAcks
		lats = append(lats, g.latencies...)
		if g.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cell %d: %w", g.cellID, g.err)
		}
	}
	total.P50, total.P90, total.P99, total.P999, total.Max = percentiles(lats)
	return total, firstErr
}

// run sends this cell's frames and consumes acks concurrently. The ack
// reader's result is joined on ackDone on every exit path (error,
// drain, timeout) before run returns.
//
//ltephy:spawn-point
func (g *cellGen) run() error {
	conn, err := net.Dial(g.cfg.Network, g.cfg.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	ackDone := make(chan error, 1)
	go func() { ackDone <- g.readAcks(conn) }()

	if err := g.send(conn); err != nil {
		// Kill the connection and wait for the reader so no goroutine
		// touches this cell's stats after run returns.
		conn.Close()
		<-ackDone
		return err
	}
	// Half-close where the transport supports it so the server sees EOF
	// while acks are still draining back.
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		_ = cw.CloseWrite()
	}
	select {
	case err := <-ackDone:
		return err
	case <-time.After(g.cfg.Timeout):
		conn.Close()
		<-ackDone
		return fmt.Errorf("fronthaul: timed out after %v waiting for acks (%d/%d)",
			g.cfg.Timeout, g.stats.Acked, g.stats.Sent)
	}
}

// send writes this cell's frames at the configured interval.
func (g *cellGen) send(conn net.Conn) error {
	model := params.NewRandom(g.cfg.Seed + uint64(g.cellID))
	var dtxRng *rng.RNG
	if g.cfg.DTXProb > 0 {
		dtxRng = rng.New(g.cfg.Seed + uint64(g.cellID)*7919)
	}
	var buf []byte
	var users []FrameUser
	var ps []uplink.UserParams
	loadAcc := 0.0
	var ticker *time.Ticker
	if g.cfg.Interval > 0 {
		ticker = time.NewTicker(g.cfg.Interval)
		defer ticker.Stop()
	}
	for seq := int64(0); seq < int64(g.cfg.Subframes); seq++ {
		// Concatenate ~Load parameter draws into one offered subframe.
		draws := int(g.cfg.Load)
		loadAcc += g.cfg.Load - float64(draws)
		if loadAcc >= 1 {
			draws++
			loadAcc--
		}
		if draws < 1 {
			draws = 1
		}
		ps = ps[:0]
		for d := 0; d < draws; d++ {
			for _, p := range model.Next() {
				if g.cfg.MaxPRB > 0 && p.PRB > g.cfg.MaxPRB {
					p.PRB = g.cfg.MaxPRB
				}
				if len(ps) < g.cfg.MaxUsers {
					ps = append(ps, p)
				}
			}
		}
		for i := range ps {
			ps[i].ID = i
		}
		sf, err := g.disp.Subframe(seq, ps)
		if err != nil {
			return err
		}
		users = users[:0]
		for slot, u := range sf.Users {
			fu := FrameUser{Data: u, Priority: g.cfg.Priority(g.cellID, seq, slot)}
			if dtxRng != nil && dtxRng.Float64() < g.cfg.DTXProb {
				fu.DTX = true
				g.stats.UsersDTX++
			}
			users = append(users, fu)
		}
		buf, err = AppendFrame(buf[:0], g.cellID, seq, users)
		if err != nil {
			return err
		}
		g.sendNs[seq].Store(obs.Nanotime())
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		g.stats.Sent++
		g.stats.UsersSent += int64(len(users))
		if ticker != nil {
			<-ticker.C
		}
	}
	return nil
}

// readAcks consumes acks until every sent frame is accounted for.
func (g *cellGen) readAcks(conn net.Conn) error {
	var buf [AckLen]byte
	for int(g.stats.Acked) < g.cfg.Subframes {
		if _, err := io.ReadFull(conn, buf[:]); err != nil {
			return fmt.Errorf("fronthaul: ack stream ended early (%d/%d acks): %w",
				g.stats.Acked, g.cfg.Subframes, err)
		}
		a, err := ParseAck(&buf)
		if err != nil || a.Cell != g.cellID || a.Seq < 0 || a.Seq >= int64(len(g.sendNs)) {
			g.stats.BadAcks++
			g.stats.Acked++
			continue
		}
		g.stats.Acked++
		switch a.Status {
		case AckDone:
			g.stats.Done++
			g.stats.UsersAccepted += int64(a.UsersAccepted)
			g.latencies = append(g.latencies, obs.Nanotime()-g.sendNs[a.Seq].Load())
		case AckShedLate:
			g.stats.ShedLate++
		case AckShedOverload:
			g.stats.ShedOverload++
		case AckShedBackpressure:
			g.stats.ShedBackpressure++
		case AckDuplicate:
			g.stats.Duplicate++
		case AckRedirect:
			g.stats.Redirected++
		}
	}
	return nil
}

// percentiles returns the p50/p90/p99/p99.9/max of the given latencies.
func percentiles(lats []int64) (p50, p90, p99, p999, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return time.Duration(lats[i])
	}
	return at(0.50), at(0.90), at(0.99), at(0.999), time.Duration(lats[len(lats)-1])
}
