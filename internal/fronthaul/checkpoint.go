package fronthaul

// Cell checkpointing and the drain barrier — the data-plane half of live
// cell migration (DESIGN.md §13). A migration is drain → checkpoint →
// restore (target) → release (source): DrainCell stops admitting new
// subframes and waits for the in-flight ones to complete; CheckpointCell
// serialises the cell's progress (admission state, activity estimates,
// cumulative KPI counters, HARQ soft buffers) into a compact
// self-validating binary snapshot; RestoreCell installs it on the target
// process; ReleaseCell clears the source so the fleet KPI rollup counts
// every block exactly once.
//
// Everything the snapshot carries is deterministic state: virtual-time
// admission, float64 HARQ mother accumulation and integer KPI counters
// all evolve identically under the same frame sequence, so a migrated
// cell's final checkpoint is byte-identical to an unmigrated run's
// (TestMigrationBitIdentity pins this).
//
// Cold path throughout: once per migration or checkpoint round.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"time"

	"ltephy/internal/obs"
	"ltephy/internal/obs/kpi"
	"ltephy/internal/phy/modulation"
)

// Snapshot layout (little-endian):
//
//	off  size  field
//	0    4     magic "LTCK"
//	4    1     version (1)
//	5    2     cell index
//	7    1     admission started flag
//	8    8     admission lastSeq (int64)
//	16   8     admission budget (float64 bits)
//	24   8     offeredEst (float64 bits)
//	32   8     admittedEst (float64 bits)
//	40   8     grantedEst (float64 bits)
//	48   ...   KPI block: firstSeq, lastSeq, overflow (int64),
//	           cell counters (5 x int64), nUsers (u32),
//	           then per user: id (u32) + 5 x int64
//	...  ...   HARQ block: nStates (u32), then per state:
//	           user (u32), prb (u32), layers (u8), mod (u8),
//	           rounds (u32), motherLen (u32), mother (float64 x len)
//	...  4     IEEE CRC-32 of all preceding bytes
const (
	checkpointMagic   = "LTCK"
	checkpointVersion = 1
)

// Checkpoint decode errors.
var (
	// ErrCheckpoint reports a malformed or corrupted snapshot.
	ErrCheckpoint = errors.New("fronthaul: bad checkpoint")
	// ErrNotDraining reports a checkpoint attempted on a live cell.
	ErrNotDraining = errors.New("fronthaul: cell not drained")
	// ErrDrainTimeout reports in-flight subframes outlasting the drain
	// window.
	ErrDrainTimeout = errors.New("fronthaul: drain timeout")
)

// CellCheckpoint is a decoded snapshot — the in-memory form the codec
// round-trips.
type CellCheckpoint struct {
	Cell        uint16
	Admission   AdmissionState
	OfferedEst  float64
	AdmittedEst float64
	GrantedEst  float64
	KPI         kpi.CellState
	HARQ        []HARQState
}

func put64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func putI64(b []byte, v int64) []byte { return put64(b, uint64(v)) }

func putF64(b []byte, v float64) []byte { return put64(b, math.Float64bits(v)) }

func putCounters(b []byte, c kpi.Counters) []byte {
	b = putI64(b, c.CrcPass)
	b = putI64(b, c.CrcFail)
	b = putI64(b, c.Dtx)
	b = putI64(b, c.Skipped)
	return putI64(b, c.Bits)
}

// Encode serialises the checkpoint. The output is fully deterministic:
// users and HARQ slots are emitted in ascending user order and every
// float is written as its exact bit pattern.
func (ck *CellCheckpoint) Encode() []byte {
	b := make([]byte, 0, 256)
	b = append(b, checkpointMagic...)
	b = append(b, checkpointVersion)
	b = binary.LittleEndian.AppendUint16(b, ck.Cell)
	if ck.Admission.Started {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = putI64(b, ck.Admission.LastSeq)
	b = putF64(b, ck.Admission.Budget)
	b = putF64(b, ck.OfferedEst)
	b = putF64(b, ck.AdmittedEst)
	b = putF64(b, ck.GrantedEst)

	b = putI64(b, ck.KPI.FirstSeq)
	b = putI64(b, ck.KPI.LastSeq)
	b = putI64(b, ck.KPI.Overflow)
	b = putCounters(b, ck.KPI.Cell)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ck.KPI.Users)))
	for _, u := range ck.KPI.Users {
		b = binary.LittleEndian.AppendUint32(b, uint32(u.User))
		b = putCounters(b, u.Counters)
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(ck.HARQ)))
	for _, h := range ck.HARQ {
		b = binary.LittleEndian.AppendUint32(b, uint32(h.User))
		b = binary.LittleEndian.AppendUint32(b, uint32(h.PRB))
		b = append(b, uint8(h.Layers), uint8(h.Mod))
		b = binary.LittleEndian.AppendUint32(b, uint32(h.Rounds))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(h.Mother)))
		for _, m := range h.Mother {
			b = putF64(b, m)
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// reader is a bounds-checked little-endian cursor over a snapshot.
type ckReader struct {
	b   []byte
	off int
	err bool
}

func (r *ckReader) take(n int) []byte {
	if r.err || r.off+n > len(r.b) {
		r.err = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *ckReader) u8() uint8 {
	if v := r.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (r *ckReader) u16() uint16 {
	if v := r.take(2); v != nil {
		return binary.LittleEndian.Uint16(v)
	}
	return 0
}

func (r *ckReader) u32() uint32 {
	if v := r.take(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

func (r *ckReader) i64() int64 {
	if v := r.take(8); v != nil {
		return int64(binary.LittleEndian.Uint64(v))
	}
	return 0
}

func (r *ckReader) f64() float64 {
	if v := r.take(8); v != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(v))
	}
	return 0
}

func (r *ckReader) counters() kpi.Counters {
	return kpi.Counters{
		CrcPass: r.i64(), CrcFail: r.i64(), Dtx: r.i64(),
		Skipped: r.i64(), Bits: r.i64(),
	}
}

// maxCheckpointSlots bounds the decoded user/HARQ table sizes so a
// corrupted length field cannot drive allocation.
const maxCheckpointSlots = 1 << 16

// DecodeCheckpoint parses and validates a snapshot.
func DecodeCheckpoint(b []byte) (*CellCheckpoint, error) {
	if len(b) < 8+4 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrCheckpoint, len(b))
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCheckpoint)
	}
	if string(body[:4]) != checkpointMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrCheckpoint, body[:4])
	}
	if body[4] != checkpointVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCheckpoint, body[4])
	}
	r := &ckReader{b: body, off: 5}
	ck := &CellCheckpoint{Cell: r.u16()}
	ck.Admission.Started = r.u8() != 0
	ck.Admission.LastSeq = r.i64()
	ck.Admission.Budget = r.f64()
	ck.OfferedEst = r.f64()
	ck.AdmittedEst = r.f64()
	ck.GrantedEst = r.f64()

	ck.KPI.FirstSeq = r.i64()
	ck.KPI.LastSeq = r.i64()
	ck.KPI.Overflow = r.i64()
	ck.KPI.Cell = r.counters()
	nUsers := r.u32()
	if nUsers > maxCheckpointSlots {
		return nil, fmt.Errorf("%w: %d user slots", ErrCheckpoint, nUsers)
	}
	for i := uint32(0); i < nUsers && !r.err; i++ {
		u := kpi.UserCounters{User: int(r.u32())}
		u.Counters = r.counters()
		ck.KPI.Users = append(ck.KPI.Users, u)
	}

	nStates := r.u32()
	if nStates > maxCheckpointSlots {
		return nil, fmt.Errorf("%w: %d HARQ slots", ErrCheckpoint, nStates)
	}
	for i := uint32(0); i < nStates && !r.err; i++ {
		h := HARQState{
			User: int(r.u32()),
			PRB:  int(r.u32()),
		}
		h.Layers = int(r.u8())
		h.Mod = modulation.Scheme(r.u8())
		h.Rounds = int(r.u32())
		motherLen := r.u32()
		if int(motherLen) > (len(body)-r.off)/8+1 {
			return nil, fmt.Errorf("%w: mother length %d", ErrCheckpoint, motherLen)
		}
		h.Mother = make([]float64, motherLen)
		for j := range h.Mother {
			h.Mother[j] = r.f64()
		}
		ck.HARQ = append(ck.HARQ, h)
	}
	if r.err || r.off != len(body) {
		return nil, fmt.Errorf("%w: truncated or trailing bytes", ErrCheckpoint)
	}
	return ck, nil
}

// DrainCell stops the cell admitting new subframes (they are answered
// AckRedirect) and waits until every in-flight subframe has completed
// and acked, up to timeout (Config.DrainTimeout when <= 0). On timeout
// the cell is left draining — the caller resumes or retries. Idempotent:
// draining an already-drained cell just re-runs the barrier.
//
// Blocking by design: the drain IS a wait-for-quiescence barrier, and it
// only ever runs on the control plane.
//
//ltephy:coldpath
//ltephy:blocking-ok
func (s *Server) DrainCell(cellID int, timeout time.Duration) error {
	c, err := s.controlCell(cellID)
	if err != nil {
		return err
	}
	if timeout <= 0 {
		timeout = s.cfg.DrainTimeout
	}
	// Flip under c.mu: the ingest re-checks draining inside its admission
	// section, so once this unlock happens no further frame can increment
	// inflight.
	c.mu.Lock()
	c.draining.Store(true)
	c.mu.Unlock()
	deadline := obs.Nanotime() + timeout.Nanoseconds()
	for c.inflight.Load() > 0 {
		if obs.Nanotime() > deadline {
			return fmt.Errorf("%w: cell %d, %d subframes in flight after %v",
				ErrDrainTimeout, cellID, c.inflight.Load(), timeout)
		}
		runtime.Gosched()
	}
	return nil
}

// ResumeCell lifts a drain: the cell admits subframes again. Used after
// a checkpoint round that does not migrate the cell.
func (s *Server) ResumeCell(cellID int) error {
	c, err := s.controlCell(cellID)
	if err != nil {
		return err
	}
	c.draining.Store(false)
	return nil
}

// CellDraining reports whether the cell is drained/redirecting.
func (s *Server) CellDraining(cellID int) bool {
	c, err := s.controlCell(cellID)
	return err == nil && c.draining.Load()
}

// CheckpointCell serialises a drained cell's progress. The cell must be
// draining with no subframes in flight (DrainCell returned nil), or the
// snapshot could tear across a concurrent completion.
func (s *Server) CheckpointCell(cellID int) ([]byte, error) {
	c, err := s.controlCell(cellID)
	if err != nil {
		return nil, err
	}
	if !c.draining.Load() || c.inflight.Load() > 0 {
		return nil, fmt.Errorf("%w: cell %d", ErrNotDraining, cellID)
	}
	ck := &CellCheckpoint{Cell: c.id}
	c.mu.Lock()
	ck.Admission = c.adm.State()
	ck.OfferedEst = c.offeredEst
	ck.AdmittedEst = c.admittedEst
	ck.GrantedEst = c.grantedEst
	c.mu.Unlock()
	ck.KPI = s.kpi.ExportCell(cellID)
	if s.harq != nil {
		ck.HARQ = s.harq.snapshotCell(c.id)
	}
	return ck.Encode(), nil
}

// RestoreCell installs a snapshot on this server's cell and opens it for
// traffic (clears draining): admission continues from the checkpointed
// sequence — replayed frames at or below it are acknowledged as
// duplicates — and the KPI/HARQ state carries over so accounting and
// soft combining continue exactly where the source stopped.
func (s *Server) RestoreCell(cellID int, snapshot []byte) error {
	c, err := s.controlCell(cellID)
	if err != nil {
		return err
	}
	ck, err := DecodeCheckpoint(snapshot)
	if err != nil {
		return err
	}
	if int(ck.Cell) != cellID {
		return fmt.Errorf("%w: snapshot for cell %d restored onto cell %d",
			ErrCheckpoint, ck.Cell, cellID)
	}
	if s.harq != nil {
		if err := s.harq.restoreCell(c.id, ck.HARQ); err != nil {
			return err
		}
	} else if len(ck.HARQ) > 0 {
		return fmt.Errorf("fronthaul: snapshot carries HARQ state but HARQ is disabled")
	}
	s.kpi.RestoreCell(cellID, ck.KPI)
	c.mu.Lock()
	c.adm.Restore(ck.Admission)
	c.offeredEst = ck.OfferedEst
	c.admittedEst = ck.AdmittedEst
	c.grantedEst = ck.GrantedEst
	c.mu.Unlock()
	c.draining.Store(false)
	return nil
}

// ReleaseCell completes a migration on the source process: the snapshot
// carried the cell's KPI counters, HARQ buffers and admission progress
// to the target, so the source clears them (keeping them would
// double-book the fleet rollup) and leaves the cell draining — any
// straggler frame is still answered AckRedirect.
func (s *Server) ReleaseCell(cellID int) error {
	c, err := s.controlCell(cellID)
	if err != nil {
		return err
	}
	if !c.draining.Load() || c.inflight.Load() > 0 {
		return fmt.Errorf("%w: cell %d", ErrNotDraining, cellID)
	}
	s.kpi.ResetCell(cellID)
	if s.harq != nil {
		s.harq.clearCell(c.id)
	}
	c.mu.Lock()
	c.adm.Restore(AdmissionState{})
	c.offeredEst = 0
	c.admittedEst = 0
	c.grantedEst = 0
	c.mu.Unlock()
	return nil
}

// controlCell resolves a control-plane cell index.
func (s *Server) controlCell(cellID int) (*cell, error) {
	if cellID < 0 || cellID >= len(s.cells) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCell, cellID)
	}
	return s.cells[cellID], nil
}
