package fronthaul

import (
	"math"
	"sync/atomic"

	"ltephy/internal/cost"
	"ltephy/internal/uplink"
)

// Predictor estimates the workload one user adds to a subframe, as a
// fraction of the cell's per-period processing capacity (the paper's
// Eq. 3/4 activity estimate). estimator.Calibration satisfies it
// directly; CostPredictor derives it from the analytic cycle model.
type Predictor interface {
	EstimateUser(p uplink.UserParams) float64
}

// TurboTracker is an exponentially weighted moving average of the
// realized turbo half-iteration counts the receiver reports
// (UserResult.TurboHalfIters). CRC-gated early termination makes the
// decode cost data-dependent; the tracker closes the loop so admission
// prices turbo by what decodes actually cost instead of the worst-case
// iteration budget. Observe is lock-free and safe for concurrent workers;
// the zero value is ready to use (HalfIters reports 0 until the first
// observation, leaving the worst-case pricing in force).
type TurboTracker struct {
	bits atomic.Uint64 // float64 EWMA, CAS-updated
}

// turboEWMAAlpha is the weight of each new observation: 1/16 smooths over
// SNR bursts while still following load shifts within tens of users.
const turboEWMAAlpha = 1.0 / 16

// Observe folds one user's realized half-iteration count into the EWMA.
// Zero counts (users decoded outside TurboFull mode) are ignored.
func (t *TurboTracker) Observe(halfIters int) {
	if halfIters <= 0 {
		return
	}
	for {
		old := t.bits.Load()
		next := float64(halfIters)
		if old != 0 {
			cur := math.Float64frombits(old)
			next = cur + turboEWMAAlpha*(next-cur)
		}
		if t.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// HalfIters returns the current EWMA (0 before any observation).
func (t *TurboTracker) HalfIters() float64 {
	return math.Float64frombits(t.bits.Load())
}

// CostPredictor predicts activity from the cost model: a user's modelled
// cycles divided by the cycles the pool's workers deliver per period.
type CostPredictor struct {
	Model    cost.Model
	Antennas int
	// PeriodCycles is workers x Model.PeriodCycles(delta): the cell's
	// cycle budget per subframe period.
	PeriodCycles float64
	// Turbo, when non-nil, feeds the realized half-iteration EWMA into
	// the model's TurboHalfIters so estimates track early termination.
	// The server wires it up for the default predictor and feeds it from
	// every user result.
	Turbo *TurboTracker
}

// NewCostPredictor builds a predictor for a pool of `workers` cores and a
// dispatch period of deltaSec seconds.
func NewCostPredictor(m cost.Model, antennas, workers int, deltaSec float64) CostPredictor {
	return CostPredictor{
		Model:        m,
		Antennas:     antennas,
		PeriodCycles: float64(workers) * m.PeriodCycles(deltaSec),
	}
}

// EstimateUser implements Predictor.
func (c CostPredictor) EstimateUser(p uplink.UserParams) float64 {
	m := c.Model
	if c.Turbo != nil {
		if h := c.Turbo.HalfIters(); h > 0 {
			m.TurboHalfIters = h
		}
	}
	return m.UserCycles(p, c.Antennas) / c.PeriodCycles
}

// ObserveTurbo implements the optional feedback interface the server
// probes for: it folds a result's realized half-iteration count into the
// tracker (no-op without one).
func (c CostPredictor) ObserveTurbo(halfIters int) {
	if c.Turbo != nil {
		c.Turbo.Observe(halfIters)
	}
}

// FlatPredictor charges a fixed activity per PRB — the simplest Eq. 3
// shape (k_LM folded into one coefficient). Tests use it to make
// admission arithmetic exact.
type FlatPredictor struct{ PerPRB float64 }

// EstimateUser implements Predictor.
func (f FlatPredictor) EstimateUser(p uplink.UserParams) float64 {
	return f.PerPRB * float64(p.PRB)
}

// Admission is the per-cell admission controller. It runs in virtual
// time: the budget refills by Capacity per subframe sequence step, so
// decisions depend only on the offered sequence of subframes — never on
// wall-clock arrival jitter — which keeps shedding deterministic and
// reproducible (the acceptance soak relies on this).
//
// Decide is not safe for concurrent use; the cell serialises calls.
type Admission struct {
	// Capacity is the activity budget granted per subframe period. 1.0
	// means "the whole pool for one period".
	Capacity float64
	// Burst caps the accumulated budget (idle periods bank at most
	// Burst-Capacity of headroom). Must be >= Capacity.
	Burst float64

	budget  float64
	lastSeq int64
	started bool
}

// Decision is the outcome of one admission pass.
type Decision struct {
	// Late: the subframe's sequence was not newer than the last admitted
	// one; the whole subframe is shed unprocessed.
	Late bool
	// Overload: no user fit the budget; the whole subframe is shed.
	Overload bool
	// Admitted is the number of users admitted.
	Admitted int
	// AdmittedEst is the predicted activity of the admitted users.
	AdmittedEst float64
	// OfferedEst is the predicted activity of all offered users.
	OfferedEst float64
	// GrantedEst is the activity budget this pass actually credited: the
	// initial burst on the first admitted subframe, afterwards the
	// per-period capacity refill clamped to the burst cap (banked budget
	// lost at the cap is NOT counted). Summed over a run it is the
	// denominator of the estimator-predicted shed budget.
	GrantedEst float64
}

const admitEps = 1e-12

// Decide runs one admission pass over a subframe's predicted per-user
// workloads est[i] and priorities prio[i] (higher = more important),
// marking admit[i] for each accepted user. Users are considered in
// priority order (ties broken by lower index first, so degradation under
// overload is deterministic) and admitted greedily while they fit the
// budget — the lowest-priority users are rejected first.
//
//ltephy:hotpath — runs once per ingested frame in the serving loop.
func (a *Admission) Decide(seq int64, est []float64, prio []uint8, admit []bool) Decision {
	var d Decision
	for i := range est {
		d.OfferedEst += est[i]
		admit[i] = false
	}
	if a.started && seq <= a.lastSeq {
		d.Late = true
		return d
	}
	if !a.started {
		a.budget = a.Burst
		a.started = true
		d.GrantedEst = a.Burst
	} else {
		credit := a.Capacity * float64(seq-a.lastSeq)
		if a.budget+credit > a.Burst {
			credit = a.Burst - a.budget
		}
		a.budget += credit
		d.GrantedEst = credit
	}
	a.lastSeq = seq

	// Priority order via insertion sort over a fixed index array: frames
	// carry at most MaxUsersPerFrame users, and the sort must not allocate.
	var order [MaxUsersPerFrame]int
	n := len(est)
	for i := 0; i < n; i++ {
		j := i
		for ; j > 0; j-- {
			k := order[j-1]
			if prio[k] >= prio[i] {
				break
			}
			order[j] = k
		}
		order[j] = i
	}

	for _, i := range order[:n] {
		if est[i] <= a.budget+admitEps {
			admit[i] = true
			a.budget -= est[i]
			d.Admitted++
			d.AdmittedEst += est[i]
		}
	}
	if d.Admitted == 0 && n > 0 {
		d.Overload = true
	}
	return d
}

// Budget returns the current unspent budget (for tests and metrics).
func (a *Admission) Budget() float64 { return a.budget }

// AdmissionState is the controller's checkpointable progress: everything
// Decide mutates. Because admission runs in virtual time, restoring this
// state on another process and replaying the same frame sequence yields
// bit-identical decisions — the property live migration's exactly-once
// KPI accounting rests on.
type AdmissionState struct {
	// LastSeq is the last admitted subframe sequence (replays at or below
	// it are duplicates).
	LastSeq int64
	// Budget is the unspent activity budget at LastSeq.
	Budget float64
	// Started records whether the controller has admitted anything yet.
	Started bool
}

// State snapshots the controller for a checkpoint. The caller serialises
// against Decide (the cell mutex, or a drained cell).
func (a *Admission) State() AdmissionState {
	return AdmissionState{LastSeq: a.lastSeq, Budget: a.budget, Started: a.started}
}

// Restore overwrites the controller's progress from a checkpoint. The
// capacity/burst configuration is not part of the state: the target cell
// is configured identically by construction.
func (a *Admission) Restore(st AdmissionState) {
	a.lastSeq = st.LastSeq
	a.budget = st.Budget
	a.started = st.Started
}
