package fronthaul

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// startServer brings up a server on a loopback TCP listener and returns
// its address. Close is registered as a cleanup.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

// TestLoopbackNominalLoad is the acceptance soak: four cells at 1x offered
// load must shed nothing and miss no deadlines, and every offered user
// must come back accepted.
func TestLoopbackNominalLoad(t *testing.T) {
	const cells, subframes = 4, 40
	srv, addr := startServer(t, Config{
		Cells:          cells,
		Pools:          2,
		Workers:        2,
		Delta:          time.Millisecond,
		DeadlineBudget: time.Minute, // generous: the assert is on shedding, not host speed
		Predictor:      FlatPredictor{PerPRB: 1e-3},
		Capacity:       1,
		Seed:           7,
	})
	stats, err := RunLoopback(GenConfig{
		Network:   "tcp",
		Addr:      addr,
		Cells:     cells,
		Subframes: subframes,
		Load:      1,
		Seed:      7,
		MaxPRB:    2,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	want := int64(cells * subframes)
	if stats.Sent != want || stats.Acked != want || stats.Done != want {
		t.Fatalf("sent/acked/done = %d/%d/%d, want %d each", stats.Sent, stats.Acked, stats.Done, want)
	}
	if stats.ShedFrames() != 0 || stats.BadAcks != 0 {
		t.Fatalf("nominal load shed frames: %s", stats)
	}
	if stats.UsersAccepted != stats.UsersSent || stats.UsersSent == 0 {
		t.Fatalf("users accepted %d of %d sent", stats.UsersAccepted, stats.UsersSent)
	}
	for i := 0; i < cells; i++ {
		st := srv.CellStats(i)
		if st.FramesShed() != 0 || st.DeadlineMissed != 0 {
			t.Errorf("cell %d: shed=%d missed=%d, want 0/0", i, st.FramesShed(), st.DeadlineMissed)
		}
		if st.FramesAccepted != subframes || st.DeadlineMet != subframes {
			t.Errorf("cell %d: accepted=%d met=%d, want %d", i, st.FramesAccepted, st.DeadlineMet, subframes)
		}
	}
	if srv.CorruptFrames() != 0 {
		t.Fatalf("corrupt frames: %d", srv.CorruptFrames())
	}
}

// overloadRun drives one cell at 4x offered load and returns the
// generator and server views.
func overloadRun(t *testing.T) (GenStats, CellStats) {
	t.Helper()
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        2,
		Delta:          time.Millisecond,
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 0.05},
		Capacity:       0.25,
		Burst:          0.5,
		Seed:           11,
	})
	stats, err := RunLoopback(GenConfig{
		Network:   "tcp",
		Addr:      addr,
		Cells:     1,
		Subframes: 80,
		Load:      4,
		Seed:      11,
		MaxPRB:    2,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	return stats, srv.CellStats(0)
}

// TestLoopbackOverload is the 4x acceptance soak: the server stays up,
// degrades by rejecting users rather than collapsing, and the reported
// shed fraction matches the estimator's predicted overload within 10%.
func TestLoopbackOverload(t *testing.T) {
	stats, st := overloadRun(t)
	if stats.Acked != stats.Sent || stats.BadAcks != 0 {
		t.Fatalf("accounting broken under overload: %s", stats)
	}
	if stats.UsersAccepted >= stats.UsersSent {
		t.Fatalf("overload did not reject any users: %s", stats)
	}
	if st.UsersAccepted == 0 {
		t.Fatalf("overload rejected everything: %+v", st)
	}

	// Reported shed fraction (activity actually rejected vs offered)
	// against the predicted overload for the granted budget: the initial
	// burst plus one capacity refill per elapsed subframe period.
	measured := 1 - st.AdmittedEst/st.OfferedEst
	granted := 0.5 + 0.25*float64(79)
	predicted := 1 - granted/st.OfferedEst
	if predicted <= 0 {
		t.Fatalf("test not in overload: offered estimate %g <= granted %g", st.OfferedEst, granted)
	}
	if diff := measured - predicted; diff < -0.1*predicted || diff > 0.1*predicted {
		t.Fatalf("shed fraction %0.3f vs predicted %0.3f: off by more than 10%%", measured, predicted)
	}
}

// TestLoopbackOverloadDeterministic replays the same overload twice: the
// virtual-time admission controller must shed exactly the same frames and
// users both times.
func TestLoopbackOverloadDeterministic(t *testing.T) {
	s1, c1 := overloadRun(t)
	s2, c2 := overloadRun(t)
	if s1.Done != s2.Done || s1.ShedOverload != s2.ShedOverload ||
		s1.UsersSent != s2.UsersSent || s1.UsersAccepted != s2.UsersAccepted {
		t.Fatalf("generator stats diverged:\n  %s\n  %s", s1, s2)
	}
	c1.DeadlineMet, c2.DeadlineMet = 0, 0 // wall-clock outcomes may differ
	c1.DeadlineMissed, c2.DeadlineMissed = 0, 0
	if c1 != c2 {
		t.Fatalf("cell stats diverged:\n  %+v\n  %+v", c1, c2)
	}
}

// rawConn sends hand-built frames and collects acks.
type rawConn struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn}
}

func (rc *rawConn) send(b []byte) {
	rc.t.Helper()
	if _, err := rc.conn.Write(b); err != nil {
		rc.t.Fatalf("write: %v", err)
	}
}

func (rc *rawConn) readAck() (Ack, error) {
	var buf [AckLen]byte
	if _, err := io.ReadFull(rc.conn, buf[:]); err != nil {
		return Ack{}, err
	}
	a, err := ParseAck(&buf)
	if err != nil {
		rc.t.Fatalf("ParseAck: %v", err)
	}
	return a, nil
}

// TestServerShedsByPriority sends subframes of six users whose priority
// equals their ID against a budget that fits three: only IDs 3, 4 and 5
// may ever reach the receiver, every frame.
func TestServerShedsByPriority(t *testing.T) {
	const ant = 2
	var mu sync.Mutex
	var gotIDs []int
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        2,
		Receiver:       func() uplink.ReceiverConfig { c := uplink.DefaultConfig(); c.Antennas = ant; return c }(),
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 0.1},
		Capacity:       0.6,
		Burst:          0.6,
		OnResult: func(r uplink.UserResult) {
			mu.Lock()
			gotIDs = append(gotIDs, r.UserID)
			mu.Unlock()
		},
	})

	txCfg := tx.DefaultConfig()
	txCfg.Receiver.Antennas = ant
	r := rng.New(5)
	users := make([]FrameUser, 6)
	for i := range users {
		u, err := tx.Generate(txCfg, uplink.UserParams{
			ID: i, PRB: 2, Layers: 1, Mod: modulation.QPSK,
		}, r)
		if err != nil {
			t.Fatalf("tx.Generate: %v", err)
		}
		users[i] = FrameUser{Data: u, Priority: uint8(i)}
	}

	rc := dialRaw(t, addr)
	const frames = 10
	for seq := int64(0); seq < frames; seq++ {
		frame, err := AppendFrame(nil, 0, seq, users)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		rc.send(frame)
	}
	for i := 0; i < frames; i++ {
		a, err := rc.readAck()
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if a.Status != AckDone || a.UsersAccepted != 3 {
			t.Fatalf("ack %d: %+v, want done with 3 users", i, a)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(gotIDs) != 3*frames {
		t.Fatalf("got %d results, want %d", len(gotIDs), 3*frames)
	}
	for _, id := range gotIDs {
		if id < 3 {
			t.Fatalf("low-priority user %d was admitted (results: %v)", id, gotIDs)
		}
	}
	st := srv.CellStats(0)
	if st.UsersAccepted != 3*frames || st.UsersRejected != 3*frames {
		t.Fatalf("cell stats: %+v, want %d accepted and rejected", st, 3*frames)
	}
}

// TestServerAcksDuplicateSubframe: a sequence number at or below the
// last admitted one is a replay — acknowledged AckDuplicate without
// processing or KPI accounting.
func TestServerAcksDuplicateSubframe(t *testing.T) {
	const ant = 2
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        1,
		Receiver:       func() uplink.ReceiverConfig { c := uplink.DefaultConfig(); c.Antennas = ant; return c }(),
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 1e-3},
	})
	users := genFrameUsers(t, ant, []int{2})
	rc := dialRaw(t, addr)
	for _, seq := range []int64{5, 3} {
		frame, err := AppendFrame(nil, 0, seq, users)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		rc.send(frame)
	}
	// Acks may interleave (completion runs on a worker); collect both.
	bySeq := map[int64]Ack{}
	for i := 0; i < 2; i++ {
		a, err := rc.readAck()
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		bySeq[a.Seq] = a
	}
	if a := bySeq[5]; a.Status != AckDone {
		t.Fatalf("seq 5: %+v, want done", a)
	}
	if a := bySeq[3]; a.Status != AckDuplicate {
		t.Fatalf("seq 3: %+v, want duplicate", a)
	}
	if st := srv.CellStats(0); st.FramesDuplicate != 1 || st.FramesShedLate != 0 || st.FramesAccepted != 1 {
		t.Fatalf("cell stats: %+v", st)
	}
}

// TestServerClosesCorruptConnection: framing violations close the
// connection and count, but the server keeps serving new connections.
func TestServerCorruptFrameClosesConn(t *testing.T) {
	const ant = 2
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        1,
		Receiver:       func() uplink.ReceiverConfig { c := uplink.DefaultConfig(); c.Antennas = ant; return c }(),
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 1e-3},
	})
	users := genFrameUsers(t, ant, []int{2})
	good, err := AppendFrame(nil, 0, 0, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}

	cases := [][]byte{
		corrupt(good, 0, 0xFF),              // bad magic
		corrupt(good, FrameHeaderLen, 0x01), // payload CRC mismatch
		func() []byte { // unknown cell
			c := append([]byte(nil), good...)
			c[6] = 9
			resealSeq(c, 0) // reseal recomputes the CRC over the mutated cell
			return c
		}(),
	}
	for i, bad := range cases {
		rc := dialRaw(t, addr)
		rc.send(bad)
		if _, err := rc.readAck(); err == nil {
			t.Fatalf("case %d: got an ack for a corrupt frame", i)
		}
	}
	if got := srv.CorruptFrames(); got != int64(len(cases)) {
		t.Fatalf("corrupt frames = %d, want %d", got, len(cases))
	}

	// The server still serves a fresh, well-behaved connection.
	rc := dialRaw(t, addr)
	rc.send(good)
	a, err := rc.readAck()
	if err != nil || a.Status != AckDone {
		t.Fatalf("post-corruption frame: ack=%+v err=%v", a, err)
	}
}

// TestServerMetrics smoke-tests the Prometheus and trace exports.
func TestServerMetrics(t *testing.T) {
	stats, _ := overloadRunWithServer(t, func(srv *Server) {
		var sb strings.Builder
		if err := srv.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		out := sb.String()
		for _, want := range []string{
			"ltephy_cell_frames_total{cell=\"0\",disposition=\"accepted\"}",
			"ltephy_cell_users_total{cell=\"0\",disposition=\"rejected\"}",
			"ltephy_cell_activity_estimate_total{cell=\"0\",kind=\"offered\"}",
			"ltephy_corrupt_frames_total 0",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
		var tb strings.Builder
		if err := srv.WriteAdmissionTrace(&tb); err != nil {
			t.Fatalf("WriteAdmissionTrace: %v", err)
		}
		if !strings.Contains(tb.String(), "traceEvents") {
			t.Errorf("admission trace missing traceEvents envelope")
		}
		if len(srv.AdmissionEvents()) == 0 {
			t.Errorf("no admission events recorded")
		}
	})
	if stats.Done == 0 {
		t.Fatalf("no frames completed: %s", stats)
	}
}

// overloadRunWithServer is overloadRun with a hook that runs against the
// live server before shutdown.
func overloadRunWithServer(t *testing.T, inspect func(*Server)) (GenStats, CellStats) {
	t.Helper()
	srv, addr := startServer(t, Config{
		Cells:          1,
		Workers:        2,
		Delta:          time.Millisecond,
		DeadlineBudget: time.Minute,
		Predictor:      FlatPredictor{PerPRB: 0.05},
		Capacity:       0.25,
		Burst:          0.5,
		Seed:           11,
	})
	stats, err := RunLoopback(GenConfig{
		Network: "tcp", Addr: addr, Cells: 1, Subframes: 40, Load: 4, Seed: 11, MaxPRB: 2,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	inspect(srv)
	return stats, srv.CellStats(0)
}
