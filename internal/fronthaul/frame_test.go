package fronthaul

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"ltephy/internal/obs"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// genFrameUsers synthesises real receive data for the given PRB counts at
// the given antenna count, with priority = 255-slot.
func genFrameUsers(t testing.TB, antennas int, prbs []int) []FrameUser {
	t.Helper()
	cfg := tx.DefaultConfig()
	cfg.Receiver.Antennas = antennas
	r := rng.New(42)
	users := make([]FrameUser, len(prbs))
	for i, prb := range prbs {
		u, err := tx.Generate(cfg, uplink.UserParams{
			ID: i, PRB: prb, Layers: 1, Mod: modulation.QPSK,
		}, r)
		if err != nil {
			t.Fatalf("tx.Generate: %v", err)
		}
		users[i] = FrameUser{Data: u, Priority: uint8(255 - i)}
	}
	return users
}

// decodeFrame runs the full decode pipeline over one encoded frame and
// returns the materialised users.
func decodeFrame(t testing.TB, frame []byte, antennas int) (Header, []*uplink.UserData, []UserRecord) {
	t.Helper()
	var hdr [FrameHeaderLen]byte
	copy(hdr[:], frame)
	h, err := ParseHeader(&hdr, MaxUsersPerFrame, DefaultMaxPayload)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	payload := frame[FrameHeaderLen : FrameHeaderLen+int(h.PayloadLen)]
	var trailer [TrailerLen]byte
	copy(trailer[:], frame[FrameHeaderLen+int(h.PayloadLen):])
	if err := VerifyPayload(payload, &trailer); err != nil {
		t.Fatalf("VerifyPayload: %v", err)
	}
	var recs [MaxUsersPerFrame]UserRecord
	n, err := ParseUsers(h, payload, &recs)
	if err != nil {
		t.Fatalf("ParseUsers: %v", err)
	}
	slot := newSlot(MaxUsersPerFrame, antennas)
	out := make([]*uplink.UserData, n)
	for i := 0; i < n; i++ {
		fillUser(&slot.users[i], slot.ws, h, payload, recs[i])
		out[i] = &slot.users[i]
	}
	return h, out, recs[:n]
}

func TestFrameRoundTrip(t *testing.T) {
	const ant = 2
	users := genFrameUsers(t, ant, []int{2, 4, 3})
	frame, err := AppendFrame(nil, 7, 123, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	wantLen := FrameHeaderLen + TrailerLen
	for _, u := range users {
		wantLen += UserRecordBytes(u.Data.Params.PRB, ant)
	}
	if len(frame) != wantLen {
		t.Fatalf("frame length = %d, want %d", len(frame), wantLen)
	}

	h, decoded, recs := decodeFrame(t, frame, ant)
	if h.Cell != 7 || h.Seq != 123 || int(h.NUsers) != len(users) || int(h.Antennas) != ant {
		t.Fatalf("header mismatch: %+v", h)
	}
	for i, d := range decoded {
		want := users[i].Data
		if d.Params != want.Params {
			t.Errorf("user %d params = %+v, want %+v", i, d.Params, want.Params)
		}
		if d.NoiseVar != want.NoiseVar {
			t.Errorf("user %d noise = %g, want %g", i, d.NoiseVar, want.NoiseVar)
		}
		if recs[i].Priority != users[i].Priority {
			t.Errorf("user %d priority = %d, want %d", i, recs[i].Priority, users[i].Priority)
		}
		for s := 0; s < uplink.SlotsPerSubframe; s++ {
			for a := 0; a < ant; a++ {
				if !equalComplex(d.RefRx[s][a], want.RefRx[s][a]) {
					t.Errorf("user %d RefRx[%d][%d] mismatch", i, s, a)
				}
			}
			for m := 0; m < uplink.DataSymbolsPerSlot; m++ {
				for a := 0; a < ant; a++ {
					if !equalComplex(d.DataRx[s][m][a], want.DataRx[s][m][a]) {
						t.Errorf("user %d DataRx[%d][%d][%d] mismatch", i, s, m, a)
					}
				}
			}
		}
	}
}

func equalComplex(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFrameEmpty(t *testing.T) {
	frame, err := AppendFrame(nil, 0, 1, nil)
	if err != nil {
		t.Fatalf("AppendFrame(empty): %v", err)
	}
	h, decoded, _ := decodeFrame(t, frame, 1)
	if h.NUsers != 0 || h.Antennas != 1 || len(decoded) != 0 {
		t.Fatalf("empty frame decoded to %+v, %d users", h, len(decoded))
	}
}

// corrupt returns a copy of frame with b[i] xor-ed by mask.
func corrupt(frame []byte, i int, mask byte) []byte {
	c := append([]byte(nil), frame...)
	c[i] ^= mask
	return c
}

func TestParseHeaderErrors(t *testing.T) {
	users := genFrameUsers(t, 1, []int{2})
	frame, err := AppendFrame(nil, 0, 1, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	parse := func(b []byte, maxUsers, maxPayload int) error {
		var hdr [FrameHeaderLen]byte
		copy(hdr[:], b)
		_, err := ParseHeader(&hdr, maxUsers, maxPayload)
		return err
	}
	if err := parse(frame, MaxUsersPerFrame, DefaultMaxPayload); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"magic", corrupt(frame, 0, 0xFF), ErrMagic},
		{"crc", corrupt(frame, 24, 0xFF), ErrHeaderCRC},
		{"seq", corrupt(frame, 9, 0x01), ErrHeaderCRC}, // any body flip fails the CRC first
	}
	for _, c := range cases {
		if err := parse(c.frame, MaxUsersPerFrame, DefaultMaxPayload); err != c.want {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}

	// Version, flags and limits violations need the CRC recomputed to be
	// reachable.
	reseal := func(mutate func(b []byte)) []byte {
		c := append([]byte(nil), frame...)
		mutate(c)
		binary.LittleEndian.PutUint32(c[24:28], crcOf(c[:24]))
		return c
	}
	if err := parse(reseal(func(b []byte) { b[4] = 9 }), MaxUsersPerFrame, DefaultMaxPayload); err != ErrVersion {
		t.Errorf("version: err = %v, want ErrVersion", err)
	}
	if err := parse(reseal(func(b []byte) { b[18] = 1 }), MaxUsersPerFrame, DefaultMaxPayload); err != ErrLimits {
		t.Errorf("flags: err = %v, want ErrLimits", err)
	}
	if err := parse(reseal(func(b []byte) { b[17] = 0 }), MaxUsersPerFrame, DefaultMaxPayload); err != ErrLimits {
		t.Errorf("zero antennas: err = %v, want ErrLimits", err)
	}
	if err := parse(reseal(func(b []byte) { b[16] = 3 }), 2, DefaultMaxPayload); err != ErrLimits {
		t.Errorf("max users: err = %v, want ErrLimits", err)
	}
	if err := parse(frame, MaxUsersPerFrame, 16); err != ErrLimits {
		t.Errorf("max payload: err = %v, want ErrLimits", err)
	}
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// resealSeq rewrites an encoded frame's sequence number in place and
// recomputes the header CRC.
func resealSeq(frame []byte, seq int64) {
	binary.LittleEndian.PutUint64(frame[8:16], uint64(seq))
	binary.LittleEndian.PutUint32(frame[24:28], crc32.ChecksumIEEE(frame[:24]))
}

func TestPayloadErrors(t *testing.T) {
	users := genFrameUsers(t, 1, []int{2, 2})
	frame, err := AppendFrame(nil, 0, 1, users)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	var hdr [FrameHeaderLen]byte
	copy(hdr[:], frame)
	h, err := ParseHeader(&hdr, MaxUsersPerFrame, DefaultMaxPayload)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	payload := append([]byte(nil), frame[FrameHeaderLen:FrameHeaderLen+int(h.PayloadLen)]...)
	var trailer [TrailerLen]byte
	copy(trailer[:], frame[FrameHeaderLen+int(h.PayloadLen):])

	// Payload CRC catches any sample flip.
	flipped := append([]byte(nil), payload...)
	flipped[len(flipped)-1] ^= 0x80
	if err := VerifyPayload(flipped, &trailer); err != ErrPayloadCRC {
		t.Errorf("payload flip: err = %v, want ErrPayloadCRC", err)
	}

	var recs [MaxUsersPerFrame]UserRecord
	mutated := func(mutate func(p []byte)) error {
		p := append([]byte(nil), payload...)
		mutate(p)
		_, err := ParseUsers(h, p, &recs)
		return err
	}
	if _, err := ParseUsers(h, payload, &recs); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	// Bit 0 of the flags byte is the DTX flag and bits 1-2 carry the HARQ
	// redundancy version; any other bit is reserved and rejects the record.
	if err := mutated(func(p []byte) { p[7] = UserFlagDTX }); err != nil {
		t.Errorf("DTX flag: err = %v, want nil", err)
	} else if !recs[0].DTX {
		t.Error("DTX flag: record not marked DTX")
	}
	if err := mutated(func(p []byte) { p[7] = 3 << UserFlagRVShift }); err != nil {
		t.Errorf("RV flag: err = %v, want nil", err)
	} else if recs[0].RV != 3 {
		t.Errorf("RV flag: RV = %d, want 3", recs[0].RV)
	}
	if err := mutated(func(p []byte) { p[7] = 0x08 }); err != ErrUserRecord {
		t.Errorf("reserved flag bit: err = %v, want ErrUserRecord", err)
	}
	if err := mutated(func(p []byte) { p[4] = 9 }); err != ErrUserRecord {
		t.Errorf("bad layers: err = %v, want ErrUserRecord", err)
	}
	if err := mutated(func(p []byte) { p[5] = 7 }); err != ErrUserRecord {
		t.Errorf("bad modulation: err = %v, want ErrUserRecord", err)
	}
	if err := mutated(func(p []byte) {
		binary.LittleEndian.PutUint64(p[8:], 0xFFF0000000000000) // -Inf
	}); err != ErrUserRecord {
		t.Errorf("bad noise: err = %v, want ErrUserRecord", err)
	}
	if err := mutated(func(p []byte) {
		binary.LittleEndian.PutUint16(p[2:], 200) // PRB beyond declared payload
	}); err != ErrTruncated {
		t.Errorf("oversized PRB: err = %v, want ErrTruncated", err)
	}
	// Declared payload longer than the records cover.
	short := h
	short.PayloadLen += 16
	grown := append(append([]byte(nil), payload...), make([]byte, 16)...)
	if _, err := ParseUsers(short, grown, &recs); err != ErrTruncated {
		t.Errorf("trailing bytes: err = %v, want ErrTruncated", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	var buf [AckLen]byte
	want := Ack{Cell: 3, Status: AckShedOverload, UsersAccepted: 5, Seq: 99}
	PutAck(&buf, want)
	got, err := ParseAck(&buf)
	if err != nil {
		t.Fatalf("ParseAck: %v", err)
	}
	if got != want {
		t.Fatalf("ack = %+v, want %+v", got, want)
	}
	buf[0] ^= 0xFF
	if _, err := ParseAck(&buf); err != ErrAckMagic {
		t.Fatalf("bad magic: err = %v, want ErrAckMagic", err)
	}
	buf[0] ^= 0xFF
	buf[6] = 200
	if _, err := ParseAck(&buf); err != ErrAckMagic {
		t.Fatalf("bad status: err = %v, want ErrAckMagic", err)
	}
}

// newBenchIngest builds an Ingest whose dispatch recycles slots
// synchronously — the decode→admit→fill path without a scheduler pool.
func newBenchIngest(antennas int, pred Predictor, capacity, burst float64) (*Ingest, *cell) {
	c := &cell{
		pred: pred,
		ring: obs.NewEventRing(0),
		adm:  Admission{Capacity: capacity, Burst: burst},
	}
	in := &Ingest{
		maxUsers:   MaxUsersPerFrame,
		maxPayload: DefaultMaxPayload,
		antennas:   uint8(antennas),
		lookup: func(id uint16) *cell {
			if id == 0 {
				return c
			}
			return nil
		},
		ack:   func(Ack) {},
		slots: make(chan *Slot, 1),
	}
	in.dispatch = func(_ *cell, sl *Slot) {
		sl.recycle()
		in.slots <- sl
	}
	in.slots <- newSlot(MaxUsersPerFrame, antennas)
	return in, c
}

// FuzzFrameDecode drives the full per-connection decode path (header,
// payload CRC, user records, admission, arena fill) over arbitrary byte
// streams: it must never panic and must reject anything whose CRCs do not
// hold.
func FuzzFrameDecode(f *testing.F) {
	users := genFrameUsers(f, 2, []int{2, 3})
	valid, err := AppendFrame(nil, 0, 1, users)
	if err != nil {
		f.Fatalf("AppendFrame: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                 // truncated trailer
	f.Add(append([]byte(nil), valid[4:]...))    // misaligned stream
	f.Add(corrupt(valid, 17, 0x03))             // header field flip
	f.Add(corrupt(valid, FrameHeaderLen, 0x80)) // payload flip
	empty, _ := AppendFrame(nil, 0, 2, nil)
	f.Add(append(append([]byte(nil), valid...), empty...)) // two frames back to back

	// One ingest per worker process: slot construction is too heavy to
	// repeat per input, and carrying admission state (late-shed history)
	// across inputs only widens the explored state space.
	in, _ := newBenchIngest(2, FlatPredictor{PerPRB: 0.01}, 1, 2)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			if err := in.ReadFrame(r); err != nil {
				break
			}
		}
	})
}
