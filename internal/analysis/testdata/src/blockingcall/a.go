// Package blockingcall exercises the deadline-blocking analyzer. The
// stage type mirrors the real uplink.Stage shape (Run with a
// *workspace.Arena first parameter seeds the deadline-root walk), and a
// //ltephy:deadline-root function covers the annotated-root path.
package blockingcall

import (
	"os"
	"sync"
	"time"

	"workspace"
)

type stage struct{ mu sync.Mutex }

// Run is a deadline-bound root; everything it reaches is checked.
func (s *stage) Run(ws *workspace.Arena, in []byte) {
	s.helper()
	s.audited()
	s.mu.Lock() // want "sync.Lock acquisition in deadline-bound function"
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep in deadline-bound function"
	logIt()
	warm()
}

// helper is reached transitively from Run: channel operations block.
func (s *stage) helper() {
	ch := make(chan int, 1)
	ch <- 1   // want "channel send in deadline-bound function"
	v := <-ch // want "channel receive in deadline-bound function"
	_ = v
	select { // want "select without default in deadline-bound function"
	case w := <-ch:
		_ = w
	}
	select { // non-blocking poll: sanctioned, no diagnostic
	case w := <-ch:
		_ = w
	default:
	}
	drain(ch)
}

// drain blocks until the channel closes.
func drain(ch chan int) {
	for range ch { // want "range over channel in deadline-bound function"
	}
}

// logIt reaches the filesystem: syscalls have no deadline.
func logIt() {
	f, _ := os.Create("x") // want "os.Create performs I/O or a syscall in deadline-bound function"
	f.Write(nil)           // want "os.Write performs I/O in deadline-bound function"
}

// audited opts out for its own body; its callee is still traversed.
//
//ltephy:blocking-ok — bounded uncontended hand-off, audited in fixture.
func (s *stage) audited() {
	s.mu.Lock() // no diagnostic: function-level opt-out
	s.mu.Unlock()
	deeper()
}

// deeper is reached through the opted-out function and still checked.
func deeper() {
	time.Sleep(time.Nanosecond) // want "time.Sleep in deadline-bound function"
}

// warm is cold construction: neither checked nor traversed.
//
//ltephy:coldpath — one-time table build, off the steady state.
func warm() {
	ch := make(chan int)
	<-ch // no diagnostic: coldpath
}

// drive covers the //ltephy:deadline-root vocabulary: a driver loop that
// is deadline-bound without having the Stage entry shape.
//
//ltephy:deadline-root — fixture per-user driver loop.
func drive(ch chan int) {
	<-ch // want "channel receive in deadline-bound function"
}

// idle is unreachable from any root: blocking is fine here.
func idle(ch chan int) {
	<-ch
	time.Sleep(time.Second)
}
