// Package arenapair exercises the Mark/Release pairing analyzer.
package arenapair

import "workspace"

// balanced is the canonical bracket: no diagnostics.
func balanced(ws *workspace.Arena, n int) {
	m := ws.Mark()
	buf := ws.Complex(n)
	_ = buf
	ws.Release(m)
}

// deferred releases on every path via defer: no diagnostics.
func deferred(ws *workspace.Arena, n int) int {
	m := ws.Mark()
	defer ws.Release(m)
	if n > 3 {
		return 1
	}
	return 0
}

// neverReleased leaks the mark entirely.
func neverReleased(ws *workspace.Arena, n int) {
	m := ws.Mark() // want "never Released"
	_ = m
	_ = ws.Complex(n)
}

// earlyReturn skips the Release on the error path.
func earlyReturn(ws *workspace.Arena, n int) int {
	m := ws.Mark()
	buf := ws.Float(n)
	if len(buf) == 0 {
		return -1 // want "return path skips"
	}
	ws.Release(m)
	return len(buf)
}

// fallsOffEnd never reaches a Release before the closing brace.
func fallsOffEnd(ws *workspace.Arena, n int) {
	m := ws.Mark()
	if n > 0 {
		ws.Release(m)
		return
	}
	_ = n
} // want "return path skips"

// loopBracket pairs Mark/Release inside the loop body; the return after
// the loop never holds a mark, so no diagnostics.
func loopBracket(ws *workspace.Arena, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := ws.Mark()
		buf := ws.Float(i + 1)
		total += len(buf)
		ws.Release(m)
	}
	return total
}

// condBracket marks and releases inside the same branch: balanced.
func condBracket(ws *workspace.Arena, n int) int {
	if n > 8 {
		m := ws.Mark()
		buf := ws.Complex(n)
		n = len(buf)
		ws.Release(m)
	}
	return n
}

// loopEarlyReturn exits the loop body between Mark and Release.
func loopEarlyReturn(ws *workspace.Arena, n int) int {
	for i := 0; i < n; i++ {
		m := ws.Mark()
		buf := ws.Float(i + 1)
		if len(buf) > 4 {
			return i // want "return path skips"
		}
		ws.Release(m)
	}
	return -1
}

// panicSkips panics while holding the mark.
func panicSkips(ws *workspace.Arena, n int) {
	m := ws.Mark()
	if n < 0 {
		panic("negative") // want "panic skips"
	}
	ws.Release(m)
}

// crossArena releases a's mark on b.
func crossArena(a, b *workspace.Arena, n int) {
	m := a.Mark()
	_ = a.Complex(n)
	b.Release(m) // want "different arena"
	a.Release(m)
}

//ltephy:coldpath — setup helper, runs once; pairing handled by caller teardown.
func coldOptOut(ws *workspace.Arena) workspace.Mark {
	m := ws.Mark()
	return m
}

// acquire hands the mark to the caller by contract.
//
//ltephy:owns-scratch — caller pairs this with release().
func acquire(ws *workspace.Arena, n int) ([]complex128, workspace.Mark) {
	m := ws.Mark()
	return ws.Complex(n), m
}
