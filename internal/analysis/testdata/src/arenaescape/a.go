// Package arenaescape exercises the scratch-lifetime analyzer.
package arenaescape

import "workspace"

type holder struct {
	buf  []complex128
	hook func() float64
}

var global []float64

// localUse keeps the scratch inside the bracket: no diagnostics.
func localUse(ws *workspace.Arena, n int) float64 {
	m := ws.Mark()
	buf := ws.Float(n)
	var sum float64
	for _, v := range buf {
		sum += v
	}
	ws.Release(m)
	return sum
}

// fieldStore retains scratch past Release.
func fieldStore(ws *workspace.Arena, h *holder, n int) {
	m := ws.Mark()
	h.buf = ws.Complex(n) // want "stored in field"
	ws.Release(m)
}

// fieldStoreViaVar retains through a local variable.
func fieldStoreViaVar(ws *workspace.Arena, h *holder, n int) {
	m := ws.Mark()
	tmp := ws.Complex(n)
	sub := tmp[:n/2]
	h.buf = sub // want "stored in field"
	ws.Release(m)
}

// globalStore retains scratch in a package variable.
func globalStore(ws *workspace.Arena, n int) {
	global = ws.Float(n) // want "package-level variable"
}

// returned hands scratch to a caller that cannot know the mark.
func returned(ws *workspace.Arena, n int) []float64 {
	return ws.Float(n) // want "returned from function"
}

// returnedComposite smuggles scratch out inside a struct literal.
func returnedComposite(ws *workspace.Arena, n int) holder {
	return holder{buf: ws.Complex(n)} // want "returned from function"
}

// closureEscape returns a closure over dead scratch.
func closureEscape(ws *workspace.Arena, n int) func() float64 {
	m := ws.Mark()
	buf := ws.Float(n)
	f := func() float64 { return buf[0] } // want "closure capturing arena scratch"
	ws.Release(m)
	return f
}

// closureLocal runs the closure within the call: no diagnostics.
func closureLocal(ws *workspace.Arena, n int) float64 {
	m := ws.Mark()
	buf := ws.Float(n)
	total := func() float64 { return buf[0] }()
	ws.Release(m)
	return total
}

//ltephy:coldpath — one-time warm-up cache fill, lifetime managed by owner.
func coldOptOut(ws *workspace.Arena, n int) []float64 {
	return ws.Float(n)
}

// carve is a job-lifetime constructor by contract.
//
//ltephy:owns-scratch — caller brackets the job mark around this carve.
func carve(ws *workspace.Arena, h *holder, n int) {
	h.buf = ws.Complex(n)
}
