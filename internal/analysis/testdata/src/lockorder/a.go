// Package lockorder exercises the mutex acquisition-order analyzer:
// opposite nesting orders of the same two lock classes deadlock.
package lockorder

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// lockAB and lockBA nest the same two classes in opposite orders: two
// goroutines running them concurrently can each hold one lock and wait
// forever on the other.
func lockAB(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want "lock order inversion"
	y.mu.Unlock()
	x.mu.Unlock()
}

func lockBA(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock() // want "lock order inversion"
	x.mu.Unlock()
	y.mu.Unlock()
}

type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

// outer acquires d's class indirectly, through the call graph, while
// holding c's — the inversion partner is outer2's direct nesting.
func outer(x *c, y *d) {
	x.mu.Lock()
	defer x.mu.Unlock()
	inner(y) // want "lock order inversion.*via call to"
}

func inner(y *d) {
	y.mu.Lock()
	defer y.mu.Unlock()
}

func outer2(x *c, y *d) {
	y.mu.Lock()
	x.mu.Lock() // want "lock order inversion"
	x.mu.Unlock()
	y.mu.Unlock()
}

type r struct{ mu sync.Mutex }

// reenter re-acquires a held class through a helper: Go mutexes are not
// reentrant, so this self-deadlocks outright.
func reenter(x *r) {
	x.mu.Lock()
	helperLock(x) // want "recursive acquisition"
	x.mu.Unlock()
}

func helperLock(x *r) {
	x.mu.Lock()
	x.mu.Unlock()
}

type e struct{ mu sync.Mutex }
type f struct{ mu sync.Mutex }

// sequentialEF holds the two classes one after the other, never nested:
// no ordering constraint, no diagnostics.
func sequentialEF(x *e, y *f) {
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Lock()
	y.mu.Unlock()
}

// lockEF is the only warm nesting of e before f: one order alone is a
// partial order, not an inversion.
func lockEF(x *e, y *f) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// coldFE nests the opposite way but runs once at construction, before
// anything is concurrent: the coldpath opt-out keeps it out of the
// partial order.
//
//ltephy:coldpath — one-time wiring; the pool is not running yet.
func coldFE(x *e, y *f) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

// localOnly uses a function-local mutex: no cross-goroutine identity,
// no class, no diagnostics.
func localOnly(y *f) {
	var mu sync.Mutex
	mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	mu.Unlock()
}

type h struct {
	mu sync.Mutex
	m  map[int]int
}

// deferredCleanup mirrors the fronthaul accept loop: a deferred closure
// re-locks for teardown while the body locks per iteration. The closure
// runs at return, after every body critical section, so none of these
// acquisitions nest — no diagnostics.
func deferredCleanup(x *h) {
	x.mu.Lock()
	x.m[0] = 1
	x.mu.Unlock()
	defer func() {
		x.mu.Lock()
		delete(x.m, 0)
		x.mu.Unlock()
	}()
	x.mu.Lock()
	x.m[1] = 2
	x.mu.Unlock()
}

var gmu sync.Mutex

type g struct{ mu sync.Mutex }

// pkgLevel nests a package-level mutex class under a field class — one
// order only, so clean; the class machinery for package-level vars is
// still exercised.
func pkgLevel(x *g) {
	gmu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	gmu.Unlock()
}
