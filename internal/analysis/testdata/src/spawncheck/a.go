// Package spawncheck exercises the goroutine lifecycle analyzer: every
// go statement needs a //ltephy:spawn-point home and a provable join.
package spawncheck

import "sync"

type server struct{ wg sync.WaitGroup }

// start is the audited WaitGroup-bracket shape: Add before the spawn,
// Done inside the statically resolved callee. No diagnostics.
//
//ltephy:spawn-point — worker lifecycle owned by wg; Close joins.
func (s *server) start(n int) {
	s.wg.Add(n)
	for i := 0; i < n; i++ {
		go s.run()
	}
}

func (s *server) run() {
	defer s.wg.Done()
}

// produce is the result-channel join shape: the spawner receives the
// goroutine's result before returning. No diagnostics.
//
//ltephy:spawn-point — single-shot worker joined on the result channel.
func produce() int {
	done := make(chan int, 1)
	go func() { done <- work() }()
	return <-done
}

func work() int { return 1 }

// leak spawns outside any annotated lifecycle point and never joins.
func leak() {
	go work() // want "outside a //ltephy:spawn-point" "no provable join"
}

// unjoined sits at an annotated point but has no Add/Done bracket and no
// result channel: the goroutine can outlive its owner.
//
//ltephy:spawn-point — annotated, but the join is missing.
func unjoined() {
	go work() // want "no provable join"
}

// dyn spawns a func value: no statically resolvable body, so no
// provable join even at an annotated point.
//
//ltephy:spawn-point — dynamic spawn, join unprovable.
func dyn(f func()) {
	go f() // want "no provable join"
}

// fireAndWait is a closure bracket: Add before, Done inside the literal.
//
//ltephy:spawn-point — closure bracket joined by the owner's Wait.
func (s *server) fireAndWait() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
	s.wg.Wait()
}
