// Package determinism exercises the bit-exactness analyzer.
package determinism

import (
	"math/rand"
	"time"
)

// mapAccumulate sums float values in map iteration order.
func mapAccumulate(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "map iteration order is nondeterministic"
	}
	return sum
}

// mapAccumulateExplicit uses the x = x + v form.
func mapAccumulateExplicit(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "map iteration order is nondeterministic"
	}
	return total
}

// mapCount accumulates an integer: order-independent, no diagnostic.
func mapCount(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// sliceAccumulate iterates a slice: deterministic, no diagnostic.
func sliceAccumulate(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// wallClock reads the real clock.
func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// globalRand draws from the shared unseeded source.
func globalRand(n int) int {
	return rand.Intn(n) // want "global math/rand"
}

// seededRand constructs an explicit deterministic stream: no diagnostic.
func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// coldDiagnostics is annotated out of the deterministic surface.
//
//ltephy:coldpath — log-only timing, never feeds results.
func coldDiagnostics() int64 {
	return time.Now().UnixNano()
}
