// Package crossarena exercises the cross-goroutine arena-scratch
// analyzer: worker-owned scratch must not reach code another worker can
// execute.
package crossarena

import "workspace"

type task struct{ fn func() }

type queue struct{}

func (q *queue) push(t task) {}

// spawnLeak launches a closure over live scratch: the spawner's Release
// frees the memory while the goroutine may still be writing.
func spawnLeak(ws *workspace.Arena) {
	buf := ws.Float(8)
	go func() { // want "closure capturing arena scratch is launched on another goroutine"
		buf[0] = 1
	}()
}

// goArg hands the scratch itself to the goroutine.
func goArg(ws *workspace.Arena) {
	buf := ws.Float(8)
	go consume(buf) // want "arena scratch passed to a goroutine"
}

func consume(b []float64) {}

// sendLeak ships the slice to whichever worker receives it.
func sendLeak(ws *workspace.Arena, ch chan []float64) {
	buf := ws.Float(8)
	ch <- buf // want "arena scratch sent on a channel crosses workers"
}

// closureSend ships a closure over the scratch instead.
func closureSend(ws *workspace.Arena, ch chan func()) {
	buf := ws.Float(8)
	ch <- func() { buf[0] = 1 } // want "closure capturing arena scratch sent on a channel"
}

// taskHandoff packs the capturing closure into a task literal and
// enqueues it: a stealing worker can pop and run it after Release.
func taskHandoff(ws *workspace.Arena, q *queue) {
	buf := ws.Float(8)
	q.push(task{fn: func() { buf[0] = 1 }}) // want "task literal carries a closure capturing arena scratch"
}

// indirect taints through an owns-scratch helper: the carve is
// job-lifetime but still worker-owned.
//
//ltephy:owns-scratch — job-lifetime carve helper.
func carve(ws *workspace.Arena, n int) []float64 { return ws.Float(n) }

func indirect(ws *workspace.Arena, ch chan []float64) {
	buf := carve(ws, 8)
	ch <- buf // want "arena scratch sent on a channel crosses workers"
}

// serial passes a capturing closure straight to a call: the ordinary
// helper shape, executed on this worker's stack. Clean.
func serial(ws *workspace.Arena) {
	buf := ws.Float(8)
	apply(func() { buf[0] = 1 })
}

func apply(f func()) { f() }

// audited is the sanctioned window fan-out shape: disjoint writes joined
// on the completion counter before Release.
//
//ltephy:cross-worker-ok — windows write disjoint slices; spawner joins before Release.
func audited(ws *workspace.Arena, ch chan func()) {
	buf := ws.Float(8)
	ch <- func() { buf[0] = 1 }
}

// cold construction may stage buffers however it likes.
//
//ltephy:coldpath — one-time wiring.
func coldStage(ws *workspace.Arena, ch chan []float64) {
	ch <- ws.Float(8)
}

// plain values crossing channels are fine: only arena aliases are taint.
func plainSend(ch chan []float64) {
	buf := make([]float64, 8)
	ch <- buf
}
