// b.go exercises the //ltephy:hotpath directive: serving-loop functions
// that are not Stage-shaped (no *workspace.Arena first parameter) are
// seeded by annotation instead — the fronthaul per-connection ingest
// pattern, where frames decode into a connection-owned arena and the
// only sanctioned allocation is high-water staging growth.
package hotpathalloc

import "workspace"

type record struct {
	off int
	n   int
}

type ingest struct {
	staging []byte
	ws      *workspace.Arena
}

// stage grows the reusable payload buffer; after warm-up the hot path
// reuses it, so the growth site is sanctioned by annotation.
func (in *ingest) stage(n int) []byte {
	if cap(in.staging) < n {
		in.staging = make([]byte, n) //ltephy:alloc-ok high-water staging growth
	}
	return in.staging[:n]
}

// readFrame is the serving loop. It is not a Stage entry (no arena first
// parameter), so only the directive below makes it a seed.
//
//ltephy:hotpath — runs once per ingested frame.
func (in *ingest) readFrame(n int) {
	payload := in.stage(n)
	rec := record{off: 0, n: n}
	decodeInto(in.ws.Complex(rec.n), payload, rec)
	_ = badDecode(payload, rec)
}

// decodeInto fills an arena carve in place: the sanctioned decode shape,
// no diagnostics.
func decodeInto(dst []complex128, b []byte, rec record) {
	for i := range dst {
		dst[i] = complex(float64(b[rec.off]), 0)
	}
}

// badDecode allocates a fresh buffer per frame: reachable from the
// annotated seed, so the analyzer must flag it.
func badDecode(b []byte, rec record) []complex128 {
	out := make([]complex128, rec.n) // want "bypasses the arena"
	for i := range out {
		out[i] = complex(float64(b[rec.off]), 0)
	}
	return out
}

// notHot has the same shape but carries no directive: its allocation is
// outside the hot set and must not be flagged.
func notHot(n int) []byte {
	return make([]byte, n)
}
