// c.go exercises the KPI record-path shape: a measurement service whose
// per-cell / per-user accumulators are preallocated at construction, so
// the per-event record call is pure atomic arithmetic into existing
// storage — annotated //ltephy:hotpath like internal/obs/kpi. The
// anti-patterns are per-event sample retention (append into package
// storage) and per-event key formatting (fmt boxing).
package hotpathalloc

import (
	"fmt"
	"sync/atomic"
)

// blockCounters is the preallocated per-user accumulator: fixed words,
// no per-event storage.
type blockCounters struct {
	pass atomic.Int64
	fail atomic.Int64
	bits atomic.Int64
}

// kpiCell owns one cell's accumulators, sized once at construction.
type kpiCell struct {
	acc   blockCounters
	users []blockCounters
}

// kpiRegistry mirrors the real registry: a sampling gate in front of
// preallocated cells.
type kpiRegistry struct {
	sampling atomic.Int64
	cells    []kpiCell
}

// newKPI preallocates every accumulator; construction is cold, so its
// allocations carry no diagnostics even without an annotation.
func newKPI(cells, users int) *kpiRegistry {
	r := &kpiRegistry{cells: make([]kpiCell, cells)}
	for i := range r.cells {
		r.cells[i].users = make([]blockCounters, users)
	}
	return r
}

// recordResult is the per-event record path: gate, index, atomic add —
// reachable allocations would be violations, and there are none.
//
//ltephy:hotpath — runs once per decoded block in the serving loop.
func (r *kpiRegistry) recordResult(cell, user int, crcOK bool, bits int) {
	if r.sampling.Load() == 0 {
		return
	}
	c := &r.cells[cell]
	if user >= len(c.users) {
		user = len(c.users) - 1
	}
	u := &c.users[user]
	if crcOK {
		u.pass.Add(1)
		c.acc.pass.Add(1)
	} else {
		u.fail.Add(1)
		c.acc.fail.Add(1)
	}
	u.bits.Add(int64(bits))
	c.acc.bits.Add(int64(bits))
	retainSample(cell, user, bits)
	_ = seriesKey(cell, user)
}

// samples is per-event retention: the KPI anti-pattern — the registry
// must fold events into counters, not keep them.
var samples []int

// retainSample appends every event into package-level storage.
func retainSample(cell, user, bits int) {
	samples = append(samples, bits) // want "may grow fresh heap"
}

// seriesKey formats a label per event; key construction belongs in the
// cold snapshot/export path, not the record path.
func seriesKey(cell, user int) string {
	return fmt.Sprintf("cell=%d user=%d", cell, user) // want "boxes arguments"
}

// snapshotKPI is the cold read side: no directive, not reachable from a
// seed, so its allocations are fine.
func snapshotKPI(r *kpiRegistry) []int64 {
	out := make([]int64, 0, len(r.cells))
	for i := range r.cells {
		out = append(out, r.cells[i].acc.pass.Load())
	}
	return out
}
