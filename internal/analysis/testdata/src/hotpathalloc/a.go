// Package hotpathalloc exercises the hot-path allocation analyzer. The
// stage type mirrors the real uplink.Stage shape: a Run method whose
// first parameter is *workspace.Arena seeds the call-graph walk.
package hotpathalloc

import (
	"fmt"
	"workspace"
)

type job struct{ n int }

type stage struct{}

// Run is a hot-path seed; everything it reaches is checked.
func (stage) Run(ws *workspace.Arena, j *job, i int) {
	kernel(ws, j.n)
	warmTable(j.n)
	guarded(ws, j.n)
	fill(ws.Float(j.n), j.n)
	sink(describe(j.n))
	telemetry.record(span{0, 1})
	recordGrowing(span{0, 1})
}

// span and ring mirror the obs event-ring shape: a fixed-capacity
// preallocated buffer with wraparound overwrite — the sanctioned
// telemetry pattern on the hot path.
type span struct{ start, end int64 }

type ring struct {
	buf   []span
	total uint64
}

// telemetry's buffer is built at package init: cold, never re-sized.
var telemetry = ring{buf: make([]span, 64)}

// record overwrites in place; reachable from Run via a method call and
// clean — no diagnostics.
func (r *ring) record(e span) {
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
}

// events is a grow-on-record "ring": the telemetry anti-pattern.
var events []span

// recordGrowing appends into package-level storage from the hot path.
func recordGrowing(e span) {
	events = append(events, e) // want "may grow fresh heap"
}

// kernel is reachable from Run: its allocations are violations.
func kernel(ws *workspace.Arena, n int) {
	buf := make([]complex128, n) // want "bypasses the arena"
	var acc []float64
	for i := 0; i < n; i++ {
		acc = append(acc, float64(i)) // want "may grow fresh heap"
	}
	_ = buf
	_ = acc
	ok := ws.Complex(n) // arena scratch: fine
	_ = ok
	sanctioned := make([]uint8, n) //ltephy:alloc-ok — decoded payload escapes by design
	_ = sanctioned
}

// fill appends into a caller-provided buffer: the sanctioned pattern.
func fill(dst []float64, n int) []float64 {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, float64(i))
	}
	return dst
}

// describe boxes its arguments into fmt's ...any variadic.
func describe(n int) string {
	return fmt.Sprintf("n=%d", n) // want "boxes arguments"
}

// guarded allocates only on the already-fatal panic path: exempt.
func guarded(ws *workspace.Arena, n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad length %d", n))
	}
	_ = ws.Float(n)
}

// warmTable is memoised one-time construction, excluded by annotation —
// and the walk must not traverse through it into buildTable.
//
//ltephy:coldpath — table built once per process, cached thereafter.
func warmTable(n int) []float64 {
	return buildTable(n)
}

// buildTable is only reachable through the coldpath function: no
// diagnostics even though it allocates.
func buildTable(n int) []float64 {
	out := make([]float64, n)
	return out
}

// coldHelper is not reachable from any Run: allocations are fine.
func coldHelper(n int) []int {
	return make([]int, n)
}

func sink(s string) { _ = s }
