// Package workspace is a stub of ltephy/internal/phy/workspace for
// analyzer fixtures: same package name, type names and method shapes, so
// the analyzers' name-based matching treats it as the real arena.
package workspace

type Arena struct{}

type Mark struct{ c, f, u int }

func New() *Arena { return &Arena{} }

func (a *Arena) Complex(n int) []complex128 { return make([]complex128, n) }
func (a *Arena) Float(n int) []float64      { return make([]float64, n) }
func (a *Arena) Bytes(n int) []uint8        { return make([]uint8, n) }
func (a *Arena) Mark() Mark                 { return Mark{} }
func (a *Arena) Release(m Mark)             {}
func (a *Arena) Reset()                     {}
