// Package atomiccheck exercises the mixed atomic/plain access analyzer
// on the call-site-atomics style the Chase-Lev deque would regress to.
package atomiccheck

import "sync/atomic"

type deque struct {
	top    int64
	bottom int64
	size   int64 // never touched atomically: plain access is fine
}

func (d *deque) push() {
	b := atomic.LoadInt64(&d.bottom)
	atomic.StoreInt64(&d.bottom, b+1)
	d.size++
}

func (d *deque) steal() bool {
	t := atomic.LoadInt64(&d.top)
	return atomic.CompareAndSwapInt64(&d.top, t, t+1)
}

// race reads and writes the atomically-managed words directly.
func (d *deque) race() int64 {
	d.top++           // want "plain access to field d.top"
	return d.bottom - // want "plain access to field d.bottom"
		atomic.LoadInt64(&d.top)
}

// sizeOnly touches only the never-atomic field: no diagnostics.
func (d *deque) sizeOnly() int64 {
	return d.size
}

// coldReset runs before the workers start, by contract.
//
//ltephy:coldpath — single-threaded construction, no concurrent access yet.
func (d *deque) coldReset() {
	d.top = 0
	d.bottom = 0
}
