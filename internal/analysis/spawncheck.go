package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpawnCheck enforces the goroutine lifecycle discipline in the
// scheduler and fronthaul layers: every `go` statement must sit inside a
// function annotated //ltephy:spawn-point (the audited lifecycle points
// — pool construction, the accept loop, the loopback harness), and every
// spawn must carry a provable join so no goroutine outlives its owner:
//
//   - a WaitGroup bracket: wg.Add(...) before the `go` statement in the
//     spawning function, and a Done() on a WaitGroup inside the spawned
//     body (directly in a closure, or in the body of a statically
//     resolved callee);
//   - or a result channel: the spawned closure sends on a channel
//     variable that the spawning function later receives from.
//
// Anything else — a bare `go f()` with no Add/Done bracket, a spawn in
// an unannotated function — is a potential leak: a worker that survives
// Pool.Close, a per-connection handler the server cannot drain.
var SpawnCheck = &Analyzer{
	Name: "spawncheck",
	Doc:  "require //ltephy:spawn-point lifecycle annotations and provable joins for every go statement",
	Run:  runSpawnCheck,
}

func runSpawnCheck(pass *Pass) error {
	info := pass.Pkg.Info
	for _, fd := range funcDecls(pass.Pkg) {
		isSpawnPoint := pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirSpawnPoint)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !isSpawnPoint {
				pass.Reportf(gs.Pos(),
					"go statement outside a //ltephy:spawn-point function; goroutine lifecycle points must be annotated and audited")
			}
			if !hasJoinProof(pass, info, fd, gs) {
				pass.Reportf(gs.Pos(),
					"goroutine has no provable join: bracket it with WaitGroup Add/Done or receive its result on a channel before returning")
			}
			return true
		})
	}
	return nil
}

// hasJoinProof looks for either join shape for the spawn at gs.
func hasJoinProof(pass *Pass, info *types.Info, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	body, bodyInfo := spawnedBody(pass, info, gs)
	if body == nil {
		return false
	}
	// WaitGroup bracket: Add before the spawn, Done inside the spawned body.
	if hasWaitGroupCall(info, fd.Body, "Add", func(n ast.Node) bool { return n.Pos() < gs.Pos() }) &&
		hasWaitGroupCall(bodyInfo, body, "Done", nil) {
		return true
	}
	// Result channel: the spawned body sends on a channel object that the
	// spawner receives from after the go statement. Only closures can
	// capture the spawner's channel variable, so this shape is only
	// checked when the spawned body is a literal.
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		for _, ch := range sentChannels(info, lit.Body) {
			if receivesFrom(info, fd.Body, ch, gs.End()) {
				return true
			}
		}
	}
	return false
}

// spawnedBody resolves the body the spawned goroutine runs: the literal
// itself for `go func(){...}()`, or the declaration of a statically
// resolved program callee for `go w.run()` / `go s.handleConn(c)`.
func spawnedBody(pass *Pass, info *types.Info, gs *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, info
	}
	fn := calleeFunc(info, gs.Call)
	if fn == nil {
		return nil, nil
	}
	fd, pkg := pass.Prog.CallGraph().Decl(funcKey(fn))
	if fd == nil {
		return nil, nil
	}
	return fd.Body, pkg.Info
}

// hasWaitGroupCall reports whether body contains a call named method on a
// sync.WaitGroup receiver, optionally filtered by position.
func hasWaitGroupCall(info *types.Info, body *ast.BlockStmt, method string, where func(ast.Node) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		tv, ok := info.Types[sel.X]
		if !ok || !isNamed(tv.Type, "sync", "WaitGroup") {
			return true
		}
		if where == nil || where(call) {
			found = true
		}
		return true
	})
	return found
}

// sentChannels collects the objects of channel-typed identifiers the body
// sends on.
func sentChannels(info *types.Info, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// receivesFrom reports whether body contains a receive (<-ch, including
// select clauses) from the given channel object positioned after `after`.
func receivesFrom(info *types.Info, body *ast.BlockStmt, ch types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW || ue.Pos() < after {
			return true
		}
		if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok && info.ObjectOf(id) == ch {
			found = true
		}
		return true
	})
	return found
}
