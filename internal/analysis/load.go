package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load enumerates the packages matching patterns (relative to dir, e.g.
// "./...") with the go tool, then parses and type-checks every
// non-standard-library package from source in dependency order. All
// packages share one FileSet and one types.Info universe, so
// cross-package object identity holds — the hot-path call-graph walk
// depends on it.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Standard || lp.ImportPath == "" || len(lp.GoFiles) == 0 {
			continue
		}
		pkgs = append(pkgs, lp)
	}
	// Topological order: dependencies before dependents.
	ordered, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}
	return typecheck(ordered, func(lp *listPackage) ([]string, error) {
		files := make([]string, len(lp.GoFiles))
		for i, g := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, g)
		}
		return files, nil
	})
}

// LoadFixture loads the package at importPath from a GOPATH-style
// fixture tree rooted at srcRoot (testdata/src). Fixture imports resolve
// inside the tree first, then fall back to the standard library — the
// same layout x/tools' analysistest uses.
func LoadFixture(srcRoot string, importPaths ...string) (*Program, error) {
	var pkgs []*listPackage
	seen := map[string]bool{}
	var add func(path string) error
	add = func(path string) error {
		if seen[path] {
			return nil
		}
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil // not a fixture package: standard library import
		}
		seen[path] = true
		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		lp := &listPackage{ImportPath: path, Dir: dir}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				lp.GoFiles = append(lp.GoFiles, e.Name())
			}
		}
		if len(lp.GoFiles) == 0 {
			return fmt.Errorf("fixture package %s has no Go files", path)
		}
		// Parse imports cheaply to pull fixture dependencies in.
		fset := token.NewFileSet()
		for _, g := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(dir, g), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				lp.Imports = append(lp.Imports, p)
				if err := add(p); err != nil {
					return err
				}
			}
		}
		pkgs = append(pkgs, lp)
		return nil
	}
	for _, p := range importPaths {
		if err := add(p); err != nil {
			return nil, err
		}
	}
	ordered, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}
	return typecheck(ordered, func(lp *listPackage) ([]string, error) {
		files := make([]string, len(lp.GoFiles))
		for i, g := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, g)
		}
		return files, nil
	})
}

func topoSort(pkgs []*listPackage) ([]*listPackage, error) {
	byPath := map[string]*listPackage{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var ordered []*listPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listPackage) error
	visit = func(p *listPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		ordered = append(ordered, p)
		return nil
	}
	sorted := append([]*listPackage(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// chainImporter resolves module/fixture packages from the already
// type-checked set, delegating everything else (the standard library) to
// the compiler's export data, then to source as a last resort.
type chainImporter struct {
	local    map[string]*types.Package
	gc       types.Importer
	source   types.Importer
	fsetOnce func() *token.FileSet
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	if p, err := c.gc.Import(path); err == nil {
		return p, nil
	}
	return c.source.Import(path)
}

func typecheck(ordered []*listPackage, filesOf func(*listPackage) ([]string, error)) (*Program, error) {
	fset := token.NewFileSet()
	// The source fallback importer parses build-tagged files through
	// go/build; disabling cgo keeps it to pure-Go variants.
	ctx := build.Default
	ctx.CgoEnabled = false
	build.Default = ctx
	imp := &chainImporter{
		local:  map[string]*types.Package{},
		gc:     importer.Default(),
		source: importer.ForCompiler(token.NewFileSet(), "source", nil),
	}
	prog := &Program{Fset: fset}
	for _, lp := range ordered {
		paths, err := filesOf(lp)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, fp := range paths {
			f, err := parser.ParseFile(fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		imp.local[lp.ImportPath] = tpkg
		prog.Pkgs = append(prog.Pkgs, &Package{
			Path:  lp.ImportPath,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return prog, nil
}
