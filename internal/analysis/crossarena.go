package analysis

import (
	"go/ast"
	"go/types"
)

// CrossArena extends the arena-scratch lifetime rule across goroutine
// boundaries. Each worker owns its arena: Mark/Release run on the
// worker's own stack, so scratch carved from worker A's arena is freed
// the instant A releases — a closure that worker B might still be
// executing then reads reused memory. The analyzer taints values that
// alias arena memory (direct carves plus results of //ltephy:owns-scratch
// helpers) and reports when a tainted value crosses a goroutine
// boundary:
//
//   - a closure capturing tainted scratch is launched with `go`;
//   - a closure capturing tainted scratch is sent on a channel, or
//     packed into a composite literal (a task struct) that is sent or
//     passed to a call — another worker can pop and run it;
//   - the tainted value itself is sent on a channel or passed as an
//     argument inside a `go` statement.
//
// The one audited exception is the turbo window fan-out: its windows
// write disjoint slices and the spawner blocks on a completion counter
// before releasing, so the enclosing function carries
// //ltephy:cross-worker-ok with that justification.
var CrossArena = &Analyzer{
	Name: "crossarena",
	Doc:  "check that arena scratch is not captured by closures another worker can execute",
	Run:  runCrossArena,
}

func runCrossArena(pass *Pass) error {
	info := pass.Pkg.Info
	for _, fd := range funcDecls(pass.Pkg) {
		if pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirColdPath) ||
			pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirCrossWorker) {
			continue
		}
		checkCrossArena(pass, info, fd.Body)
	}
	return nil
}

func checkCrossArena(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}

	// isTainted mirrors arenaescape's aliasing rules, with one addition:
	// calls to //ltephy:owns-scratch program functions return job-lifetime
	// arena memory, which is still worker-owned and so still tainted here.
	var isTainted func(e ast.Expr) bool
	isTainted = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(e)
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			if IsArenaAllocCall(info, e) {
				return true
			}
			return ownsScratchCall(pass, info, e)
		case *ast.SliceExpr:
			return isTainted(e.X)
		case *ast.IndexExpr:
			return isTainted(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if isTainted(kv.Value) {
						return true
					}
				} else if isTainted(el) {
					return true
				}
			}
			return false
		case *ast.UnaryExpr:
			return isTainted(e.X)
		}
		return false
	}

	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := info.ObjectOf(id); obj != nil && isTainted(as.Rhs[i]) {
					tainted[obj] = true
				}
			}
			return true
		})
	}

	// capturesTaint reports whether a literal's body reads a tainted
	// object declared outside the literal.
	capturesTaint := func(lit *ast.FuncLit) bool {
		captures := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && tainted[obj] &&
					(obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
					captures = true
				}
			}
			return !captures
		})
		return captures
	}

	// crossesWorker reports whether the expression hands a value to code
	// another goroutine can run, with a human-readable route.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Tainted arguments and taint-capturing closures under `go`.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && capturesTaint(lit) {
				pass.Reportf(n.Pos(),
					"closure capturing arena scratch is launched on another goroutine; the owner's Release frees it mid-flight (annotate //ltephy:cross-worker-ok if joined before Release)")
			}
			for _, arg := range n.Call.Args {
				if isTainted(arg) {
					pass.Reportf(arg.Pos(),
						"arena scratch passed to a goroutine; the owner's Release frees it mid-flight (annotate //ltephy:cross-worker-ok if joined before Release)")
				}
			}
		case *ast.SendStmt:
			// Tainted values — or closures/task literals capturing them —
			// sent on a channel cross to whichever worker receives.
			if isTainted(n.Value) {
				pass.Reportf(n.Value.Pos(),
					"arena scratch sent on a channel crosses workers; the owner's Release frees it while the receiver still holds it")
			}
			if lit := litIn(n.Value); lit != nil && capturesTaint(lit) {
				pass.Reportf(n.Value.Pos(),
					"closure capturing arena scratch sent on a channel; another worker can execute it after the owner's Release")
			}
		case *ast.CallExpr:
			// Task hand-off: a composite literal or closure capturing
			// scratch passed into a call that enqueues it (deque push,
			// dispatcher submit). Only composite literals containing a
			// capturing closure are flagged — a direct closure argument is
			// the ordinary serial helper-call shape.
			for _, arg := range n.Args {
				cl, ok := ast.Unparen(arg).(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, el := range cl.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if lit, ok := ast.Unparen(v).(*ast.FuncLit); ok && capturesTaint(lit) {
						pass.Reportf(arg.Pos(),
							"task literal carries a closure capturing arena scratch; a stealing worker can run it after the owner's Release (annotate //ltephy:cross-worker-ok if the hand-off is joined before Release)")
					}
				}
			}
		}
		return true
	})
}

// litIn unwraps an expression to a function literal if it directly is one.
func litIn(e ast.Expr) *ast.FuncLit {
	if lit, ok := ast.Unparen(e).(*ast.FuncLit); ok {
		return lit
	}
	return nil
}

// ownsScratchCall reports whether the call statically resolves to a
// program function annotated //ltephy:owns-scratch (its results are
// arena-backed by contract).
func ownsScratchCall(pass *Pass, info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	fd, pkg := pass.Prog.CallGraph().Decl(funcKey(fn))
	return fd != nil && pkg.HasDirective(pass.Prog.Fset, fd, DirOwnsScratch)
}
