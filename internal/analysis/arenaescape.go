package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaEscape enforces the scratch-lifetime rule: slices carved from a
// workspace.Arena die at the enclosing Release, so they must not be
// stored into struct fields or package-level variables, returned, or
// captured by closures that outlive the call. Functions that manage
// longer-lived carves by contract (job Init, paired acquire/release
// helpers) opt out with //ltephy:owns-scratch.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc:  "check that arena scratch slices do not escape their Mark/Release window",
	Run:  runArenaEscape,
}

func runArenaEscape(pass *Pass) error {
	info := pass.Pkg.Info
	for _, fd := range funcDecls(pass.Pkg) {
		if pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirColdPath) ||
			pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirOwnsScratch) {
			continue
		}
		checkEscapes(pass, info, fd.Body)
	}
	return nil
}

// checkEscapes runs a simple flow-insensitive taint pass over one
// function body: values derived from arena allocation calls are tainted,
// and taint reaching a field store, global store, return statement, or a
// surviving closure is reported.
func checkEscapes(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}

	// isTainted reports whether the expression yields arena-backed memory.
	var isTainted func(e ast.Expr) bool
	isTainted = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(e)
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			return IsArenaAllocCall(info, e)
		case *ast.SliceExpr:
			return isTainted(e.X)
		case *ast.IndexExpr:
			// Indexing a tainted [][]T or similar still aliases the arena.
			return isTainted(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if isTainted(kv.Value) {
						return true
					}
				} else if isTainted(el) {
					return true
				}
			}
			return false
		case *ast.UnaryExpr:
			return isTainted(e.X)
		}
		return false
	}

	// Two propagation passes reach the depth the codebase uses (a taint
	// assigned forward once and then re-assigned).
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if isTainted(as.Rhs[i]) {
					tainted[obj] = true
				}
			}
			return true
		})
	}

	isGlobal := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		return ok && v.Parent() == pass.Pkg.Types.Scope()
	}

	// Returns inside nested closures are the closure's own exits, not this
	// function's: a closure handing scratch to its local call site is
	// safe, and an escaping closure is reported as a capture instead.
	var litSpans [][2]ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litSpans = append(litSpans, [2]ast.Node{lit, lit})
		}
		return true
	})
	inClosure := func(n ast.Node) bool {
		for _, sp := range litSpans {
			if n.Pos() >= sp[0].Pos() && n.End() <= sp[1].End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isTainted(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
						pass.Reportf(n.Rhs[i].Pos(),
							"arena scratch stored in field %s outlives its Release; copy it or carve job-lifetime memory in an owns-scratch function",
							types.ExprString(l))
					}
				case *ast.Ident:
					if obj := info.ObjectOf(l); obj != nil && isGlobal(obj) {
						pass.Reportf(n.Rhs[i].Pos(),
							"arena scratch stored in package-level variable %s outlives its Release", l.Name)
					}
				case *ast.IndexExpr:
					// Storing into an element of a field/global container.
					switch base := ast.Unparen(l.X).(type) {
					case *ast.SelectorExpr:
						if sel, ok := info.Selections[base]; ok && sel.Kind() == types.FieldVal {
							pass.Reportf(n.Rhs[i].Pos(),
								"arena scratch stored in field %s outlives its Release", types.ExprString(base))
						}
					case *ast.Ident:
						if obj := info.ObjectOf(base); obj != nil && isGlobal(obj) {
							pass.Reportf(n.Rhs[i].Pos(),
								"arena scratch stored in package-level variable %s outlives its Release", base.Name)
						}
					}
				}
			}
		case *ast.ReturnStmt:
			if inClosure(n) {
				return true
			}
			for _, res := range n.Results {
				if isTainted(res) {
					pass.Reportf(res.Pos(),
						"arena scratch returned from function; it dies at the enclosing Release (annotate //ltephy:owns-scratch if the caller holds the mark)")
				}
			}
		case *ast.FuncLit:
			// A closure capturing arena scratch may outlive the call if the
			// closure itself escapes (returned or stored). Find captured
			// tainted objects first.
			captures := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
						captures = true
					}
				}
				return !captures
			})
			if captures && funcLitEscapes(info, body, n) {
				pass.Reportf(n.Pos(), "closure capturing arena scratch escapes the function; the scratch dies at Release")
			}
			return true
		}
		return true
	})
}

// funcLitEscapes reports whether the literal can outlive the enclosing
// call: it is returned, stored into a field, launched as a goroutine, or
// bound to a local variable that is itself returned or field-stored.
func funcLitEscapes(info *types.Info, body *ast.BlockStmt, lit *ast.FuncLit) bool {
	escapes := false
	carriers := map[types.Object]bool{} // locals holding the literal
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if containsNode(n.Call, lit) {
				escapes = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !containsNode(rhs, lit) {
					continue
				}
				switch l := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
						escapes = true
					}
				case *ast.Ident:
					// Only a direct binding carries the closure; an
					// immediately-invoked literal binds its result instead.
					if ast.Unparen(rhs) == ast.Node(lit) {
						if obj := info.ObjectOf(l); obj != nil {
							carriers[obj] = true
						}
					}
				}
			}
		}
		return !escapes
	})
	if escapes {
		return true
	}
	carried := func(e ast.Expr) bool {
		if containsNode(e, lit) {
			return true
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && carriers[obj] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if carried(r) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !carried(rhs) || containsNode(rhs, lit) {
					continue
				}
				if l, ok := ast.Unparen(n.Lhs[i]).(*ast.SelectorExpr); ok {
					if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
						escapes = true
					}
				}
			}
		}
		return !escapes
	})
	return escapes
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
