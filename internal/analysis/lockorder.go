package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder infers the mutex acquisition partial order across the
// scheduler and fronthaul layers and flags inversions that could
// deadlock the pool. A lock *class* is a mutex with a stable identity:
// a sync.Mutex/RWMutex field of a named struct ("sched.deque.mu") or a
// package-level mutex variable ("fft.planMu"). For every function the
// analyzer computes the held span of each acquisition (Lock/RLock to
// the matching Unlock/RUnlock on the same receiver; to function end for
// deferred or unmatched releases) and records an order edge A→B whenever
// class B is acquired — directly or through any call-graph path — while
// class A is held. A pair of edges A→B and B→A is a potential deadlock:
// two goroutines taking the locks in opposite orders can each hold one
// and wait forever on the other. A self-edge A→A (re-acquiring a held
// class) is flagged too: Go mutexes are not reentrant.
//
// RLock acquisitions share their class with Lock: a read-read inversion
// is usually benign, but a writer arriving between two readers converts
// it into a deadlock, so it still warrants an audit.
//
// //ltephy:coldpath functions are exempt and not traversed: one-time
// construction runs before the pool goes concurrent, so its acquisition
// order cannot deadlock steady-state workers. Genuinely concurrent code
// must not carry the annotation.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag mutex acquisition order inversions that could deadlock",
	Run:  runLockOrder,
}

// lockEdge records "to acquired while from was held", with the position
// of the inner acquisition (or the call leading to it).
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkgPath  string
	via      string // "" for a direct nested acquisition, callee key otherwise
}

type lockOrderFacts struct {
	// edges maps (from,to) to the first-seen witness edge.
	edges map[[2]string]lockEdge
}

// lockAcq is one acquisition site inside a function body.
type lockAcq struct {
	class string
	pos   token.Pos // position of the Lock/RLock call
	end   token.Pos // end of the held span
}

func runLockOrder(pass *Pass) error {
	facts := pass.Prog.lockOrder()
	var keys [][2]string
	for k := range facts.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := facts.edges[k]
		if e.pkgPath != pass.Pkg.Path {
			continue // reported in the package that owns the witness site
		}
		if e.from == e.to {
			pass.Reportf(e.pos, "recursive acquisition of %s while already held%s; Go mutexes are not reentrant",
				e.from, viaSuffix(e.via))
			continue
		}
		rev, ok := facts.edges[[2]string{e.to, e.from}]
		if !ok {
			continue
		}
		pass.Reportf(e.pos,
			"lock order inversion: %s acquired while holding %s%s, but the reverse order is taken at %s — two goroutines can deadlock",
			e.to, e.from, viaSuffix(e.via), pass.Prog.Fset.Position(rev.pos))
	}
	return nil
}

func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " (via call to " + shortKey(via) + ")"
}

// buildLockOrderFacts computes the whole-program acquisition order facts
// once; every lockorder pass shares them through Program.lockOrder.
func buildLockOrderFacts(prog *Program) *lockOrderFacts {
	g := prog.CallGraph()
	facts := &lockOrderFacts{edges: map[[2]string]lockEdge{}}

	// Pass 1: direct acquisitions (with held spans) per function.
	acqs := map[string][]lockAcq{}
	var keys []string
	for key := range g.decls {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if g.isColdPath(key) {
			continue // one-time init runs outside the concurrent steady state
		}
		fd, pkg := g.decls[key], g.pkgOf[key]
		acqs[key] = collectAcquisitions(pkg.Info, fd)
	}

	// Pass 2: transitive acquisition sets (classes a call to the function
	// may acquire, directly or through callees), memoised over the graph.
	memo := map[string]map[string]bool{}
	var transitive func(key string, onPath map[string]bool) map[string]bool
	transitive = func(key string, onPath map[string]bool) map[string]bool {
		if set, ok := memo[key]; ok {
			return set
		}
		if onPath[key] {
			return nil // cycle: contributions come from the first visit
		}
		onPath[key] = true
		set := map[string]bool{}
		for _, a := range acqs[key] {
			set[a.class] = true
		}
		for _, callee := range g.edges[key] {
			if g.isColdPath(callee) {
				continue
			}
			for c := range transitive(callee, onPath) {
				set[c] = true
			}
		}
		delete(onPath, key)
		memo[key] = set
		return set
	}

	addEdge := func(from, to string, pos token.Pos, pkgPath, via string) {
		k := [2]string{from, to}
		if _, ok := facts.edges[k]; !ok {
			facts.edges[k] = lockEdge{from: from, to: to, pos: pos, pkgPath: pkgPath, via: via}
		}
	}

	// Pass 3: for every held span, record what is acquired inside it.
	for _, key := range keys {
		fd, pkg := g.decls[key], g.pkgOf[key]
		held := acqs[key]
		if len(held) == 0 {
			continue
		}
		for _, h := range held {
			// Direct nested acquisitions within the span.
			for _, inner := range held {
				if inner.pos > h.pos && inner.pos < h.end {
					addEdge(h.class, inner.class, inner.pos, pkg.Path, "")
				}
			}
			// Calls within the span: union of the callees' transitive sets.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Pos() <= h.pos || call.Pos() >= h.end {
					return true
				}
				for _, callee := range g.callees(pkg.Info, call) {
					for c := range transitive(callee, map[string]bool{}) {
						addEdge(h.class, c, call.Pos(), pkg.Path, callee)
					}
				}
				return true
			})
		}
	}
	return facts
}

// collectAcquisitions finds every Lock/RLock on a classifiable mutex in
// the function body and computes its held span. Each acquisition is
// scoped to its innermost enclosing function literal (a deferred
// closure's Lock/Unlock pair runs at defer time, not in the enclosing
// body's flow), falling back to the declaration body.
func collectAcquisitions(info *types.Info, fd *ast.FuncDecl) []lockAcq {
	var lits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	scopeOf := func(pos token.Pos) *ast.BlockStmt {
		scope := fd.Body
		for _, lit := range lits {
			if pos >= lit.Body.Pos() && pos <= lit.Body.End() &&
				(scope == fd.Body || lit.Body.Pos() >= scope.Pos()) {
				scope = lit.Body
			}
		}
		return scope
	}

	var out []lockAcq
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, method, ok := mutexMethod(info, call)
		if !ok || (method != "Lock" && method != "RLock") {
			return true
		}
		class := lockClass(info, sel.X)
		if class == "" {
			return true // local mutex: no cross-goroutine identity
		}
		release := "Unlock"
		if method == "RLock" {
			release = "RUnlock"
		}
		out = append(out, lockAcq{
			class: class,
			pos:   call.Pos(),
			end:   releaseEnd(info, scopeOf(call.Pos()), call, sel.X, release),
		})
		return true
	})
	return out
}

// mutexMethod matches a method call on a sync.Mutex/RWMutex receiver.
func mutexMethod(info *types.Info, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil, "", false
	}
	if !isNamed(tv.Type, "sync", "Mutex") && !isNamed(tv.Type, "sync", "RWMutex") {
		return nil, "", false
	}
	return sel, sel.Sel.Name, true
}

// lockClass gives a mutex expression a program-wide identity: the owning
// named struct type plus field name for field mutexes, the package path
// plus variable name for package-level mutexes. Locals return "".
func lockClass(info *types.Info, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *ast.SelectorExpr:
		s, ok := info.Selections[e]
		if !ok || s.Kind() != types.FieldVal {
			return ""
		}
		recv := s.Recv()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + s.Obj().Name()
	}
	return ""
}

// releaseEnd finds the end of the held span within the acquisition's
// scope: the first matching release call on the same receiver after the
// acquisition, or the scope end when the release is deferred or absent.
func releaseEnd(info *types.Info, scope *ast.BlockStmt, lock *ast.CallExpr, recv ast.Expr, release string) token.Pos {
	recvKey := exprKey(info, recv)
	end := scope.End()
	ast.Inspect(scope, func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false // deferred releases run at scope end
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != scope {
			return false // nested literal: runs in its own flow
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= lock.Pos() || call.Pos() >= end {
			return true
		}
		sel, method, ok := mutexMethod(info, call)
		if !ok || method != release || exprKey(info, sel.X) != recvKey {
			return true
		}
		end = call.Pos()
		return true
	})
	return end
}
