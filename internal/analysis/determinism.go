package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism guards the serial-vs-parallel bit-exactness contract
// (`lte-bench -verify`): in the receiver and simulator packages it flags
// the three classic nondeterminism sources —
//
//  1. ranging over a map while accumulating floating-point or complex
//     values (iteration order varies run to run, and float addition is
//     not associative);
//  2. time.Now(), which leaks wall-clock state into results;
//  3. the global math/rand source (unseeded, and shared across
//     goroutines), instead of the repo's seeded internal/rng streams or
//     an explicit rand.New(rand.NewSource(seed)).
//
// Functions annotated //ltephy:coldpath (diagnostics, logging) are
// skipped.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag map-order-dependent accumulation, time.Now and global math/rand in deterministic packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	for _, fd := range funcDecls(pass.Pkg) {
		if pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirColdPath) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapAccumulation(pass, info, n)
			case *ast.CallExpr:
				checkClockAndRand(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// checkMapAccumulation flags numeric floating accumulation inside a
// range-over-map body.
func checkMapAccumulation(pass *Pass, info *types.Info, rs *ast.RangeStmt) {
	tv, ok := info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloatish(info, as.Lhs[0]) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation over map iteration order is nondeterministic; iterate a sorted key slice instead")
			}
		case token.ASSIGN:
			// x = x + v style accumulation.
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				bin, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr)
				if !ok || (bin.Op != token.ADD && bin.Op != token.MUL) || !isFloatish(info, lhs) {
					continue
				}
				l := types.ExprString(ast.Unparen(lhs))
				if types.ExprString(ast.Unparen(bin.X)) == l || types.ExprString(ast.Unparen(bin.Y)) == l {
					pass.Reportf(as.Pos(),
						"floating-point accumulation over map iteration order is nondeterministic; iterate a sorted key slice instead")
				}
			}
		}
		return true
	})
}

func isFloatish(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// checkClockAndRand flags time.Now and global math/rand entry points.
func checkClockAndRand(pass *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on a seeded *rand.Rand are the
	// sanctioned escape hatch, so a receiver expression disqualifies.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now() breaks replayable determinism; thread a timestamp or use the dispatcher's virtual clock")
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructing an explicitly seeded generator is fine
		}
		pass.Reportf(call.Pos(),
			"global math/rand source is unseeded and shared; use internal/rng or an explicit rand.New(rand.NewSource(seed))")
	}
}
