package analysis

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
)

// SARIF export: the diagnostics rendered as a Static Analysis Results
// Interchange Format 2.1.0 log, the schema GitHub code scanning ingests.
// One run, one tool ("ltephy-lint"), one rule per analyzer, one result
// per diagnostic with a physical location relative to root so the log is
// stable across checkouts.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFReport renders diags as a SARIF 2.1.0 log. File paths are made
// relative to root (and slash-separated) so the artifact URIs match the
// repository layout regardless of where the checker ran.
func SARIFReport(fset *token.FileSet, analyzers []*Analyzer, diags []Diagnostic, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: RelPath(root, pos.Filename)},
				Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ltephy-lint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// RelPath renders filename relative to root with forward slashes — the
// stable repo-relative form used by both the SARIF artifact URIs and the
// baseline file. Paths outside root fall back to the cleaned original.
func RelPath(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
