package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted patterns of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// AnalysisTest loads the given fixture packages from testdata/src and
// runs the analyzer over them, comparing the diagnostics against the
// `// want "regexp"` expectations in the fixture sources — the same
// convention as x/tools' analysistest, reimplemented over this package's
// loader so fixtures carry stub dependencies (a stub workspace package)
// under testdata/src/<import path>.
func AnalysisTest(t *testing.T, a *Analyzer, pkgPaths ...string) {
	t.Helper()
	prog, err := LoadFixture("testdata/src", pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	run := map[string]bool{}
	for _, p := range pkgPaths {
		run[p] = true
	}
	diags, err := RunAnalyzers(prog, []*Analyzer{a}, func(_ *Analyzer, pkg *Package) bool {
		return run[pkg.Path]
	})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	// Collect expectations from the fixture comments.
	expects := map[key][]*regexp.Regexp{}
	for _, pkg := range prog.Pkgs {
		if !run[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range splitQuoted(m[1]) {
						re, err := regexp.Compile(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q, err)
						}
						expects[k] = append(expects[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range expects[k] {
			if re.MatchString(d.Message) {
				expects[k] = append(expects[k][:i], expects[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posString(pos.Filename, pos.Line), d.Message)
		}
	}
	for k, res := range expects {
		for _, re := range res {
			t.Errorf("%s: expected diagnostic matching %q, got none", posString(k.file, k.line), re)
		}
	}
}

func posString(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// splitQuoted parses the sequence of Go-quoted strings after `want`.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		if s[0] != '"' && s[0] != '`' {
			break
		}
		prefix, rest := scanOne(s)
		if prefix == "" {
			break
		}
		if unq, err := strconv.Unquote(prefix); err == nil {
			out = append(out, unq)
		}
		s = strings.TrimSpace(rest)
	}
	return out
}

func scanOne(s string) (quoted, rest string) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			return s[:i+1], s[i+1:]
		}
	}
	return "", s
}
