// Package analysis is a self-contained static-analysis framework and a
// suite of analyzers that mechanically enforce this repository's
// load-bearing invariants: arena Mark/Release pairing, arena-scratch
// lifetime (no escapes past Release), an allocation-free hot path
// reachable from Stage.Run/RunBatch, serial-vs-parallel determinism, and
// consistent atomic access in the scheduler.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built purely on the standard
// library (go/ast, go/types, go/importer) so the module carries no
// external dependency. Packages are loaded with `go list -json -deps`
// and type-checked from source in dependency order; the standard library
// is imported through the compiler's export data (falling back to source
// when unavailable).
//
// # Annotation convention
//
// Three comment directives tune the analyzers at intentional boundaries;
// each must carry a reason on the same comment block:
//
//   - //ltephy:coldpath — on a function: the function is not part of the
//     steady-state hot path (memoised table construction, one-time
//     warm-up, guard code). All analyzers skip the function and the
//     hot-path call-graph walk does not traverse through it.
//   - //ltephy:owns-scratch — on a function: the function intentionally
//     lets arena memory outlive its own frame (job-lifetime carves,
//     paired acquire/release helpers). arenapair and arenaescape skip it;
//     the enclosing Mark/Release discipline is the caller's contract.
//   - //ltephy:alloc-ok — on the line of (or the line above) a heap
//     allocation inside a hot function: the allocation is sanctioned
//     (decoded payload bits escape the job by design; nil-arena
//     convenience fallbacks). Only hotpathalloc consults it.
//   - //ltephy:hotpath — on a function: an additional hot-path root for
//     hotpathalloc beyond the Stage.Run/RunBatch shape (the fronthaul
//     ingest loop's decode→admit→dispatch functions). The function and
//     everything reachable from it must satisfy the zero-alloc rule, and
//     it joins the deadline-bound root set for blockingcall/crossarena.
//   - //ltephy:deadline-root — on a function: a deadline-bound root for
//     blockingcall and crossarena that is not a zero-alloc root (the
//     scheduler's per-user driver loop: it allocates the job by design
//     but must never block inside the subframe budget).
//   - //ltephy:blocking-ok — on a function: its own blocking operations
//     are audited and sanctioned (bounded uncontended critical sections
//     like the deque mutex, transport-paced ingest reads). blockingcall
//     skips the function's body but still traverses its callees.
//   - //ltephy:spawn-point — on a function: a goroutine lifecycle point.
//     spawncheck requires every `go` statement to sit in one, and still
//     demands a provable join (WaitGroup Add/Done bracket or a result
//     channel the spawner receives from).
//   - //ltephy:cross-worker-ok — on a function: its closures are allowed
//     to carry arena-backed memory to other workers (the audited turbo
//     window fan-out, whose windows write disjoint slices under a
//     completion counter). crossarena skips the function.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one invariant checker. Run is invoked once per
// loaded package with a Pass giving access to the syntax, type
// information and the whole program (for cross-package analyses like the
// hot-path call-graph walk).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries the inputs of one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Package is one type-checked package: syntax plus types.Info.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// directives caches parsed //ltephy: annotations, built lazily.
	dirOnce    sync.Once
	funcDirs   map[*ast.FuncDecl]map[string]bool
	allocOK    map[int]bool // file-set line numbers carrying ltephy:alloc-ok
	allocOKSet bool
}

// Program is the full set of loaded module packages sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// Shared cross-function caches, each built at most once per load and
	// shared by every analyzer (the lint wall-time budget depends on it).
	cgOnce       sync.Once
	cg           *CallGraph
	hotOnce      sync.Once
	hotSet       map[string]bool // funcKey -> reachable from a stage root
	deadlineOnce sync.Once
	deadlineSet  *Reach // reachable from a deadline-bound root
	lockOnce     sync.Once
	lockFacts    *lockOrderFacts
}

// PackageOf returns the loaded package with the given import path, or nil.
func (prog *Program) PackageOf(path string) *Package {
	for _, p := range prog.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// Directive names recognised on function declarations.
const (
	DirColdPath     = "coldpath"
	DirOwnsScratch  = "owns-scratch"
	DirAllocOK      = "alloc-ok"
	DirHotPath      = "hotpath"
	DirDeadlineRoot = "deadline-root"
	DirBlockingOK   = "blocking-ok"
	DirSpawnPoint   = "spawn-point"
	DirCrossWorker  = "cross-worker-ok"
)

// funcDirectives is the set of directive names attached to function
// declarations (as opposed to line-level ones like alloc-ok).
var funcDirectives = map[string]bool{
	DirColdPath:     true,
	DirOwnsScratch:  true,
	DirHotPath:      true,
	DirDeadlineRoot: true,
	DirBlockingOK:   true,
	DirSpawnPoint:   true,
	DirCrossWorker:  true,
}

const dirPrefix = "//ltephy:"

// parseDirectives scans every comment in the package once, recording
// function-level directives (from doc comments) and the lines carrying
// ltephy:alloc-ok.
func (p *Package) parseDirectives(fset *token.FileSet) {
	p.dirOnce.Do(func() {
		p.funcDirs = map[*ast.FuncDecl]map[string]bool{}
		p.allocOK = map[int]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, dirPrefix) {
						continue
					}
					name := strings.TrimPrefix(text, dirPrefix)
					if i := strings.IndexAny(name, " \t"); i >= 0 {
						name = name[:i]
					}
					if name == DirAllocOK {
						// Suppresses an allocation on the same line or the
						// line directly below (directive-on-its-own-line).
						line := fset.Position(c.Pos()).Line
						p.allocOK[line] = true
						p.allocOK[line+1] = true
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, dirPrefix) {
						continue
					}
					name := strings.TrimPrefix(text, dirPrefix)
					if i := strings.IndexAny(name, " \t"); i >= 0 {
						name = name[:i]
					}
					if funcDirectives[name] {
						m := p.funcDirs[fd]
						if m == nil {
							m = map[string]bool{}
							p.funcDirs[fd] = m
						}
						m[name] = true
					}
				}
			}
		}
	})
}

// HasDirective reports whether fn carries the named function directive.
func (p *Package) HasDirective(fset *token.FileSet, fn *ast.FuncDecl, name string) bool {
	p.parseDirectives(fset)
	return p.funcDirs[fn][name]
}

// AllocOKLine reports whether the given line is covered by a
// ltephy:alloc-ok directive.
func (p *Package) AllocOKLine(fset *token.FileSet, pos token.Pos) bool {
	p.parseDirectives(fset)
	return p.allocOK[fset.Position(pos).Line]
}

// RunAnalyzers runs each analyzer over every package the filter admits
// and returns the diagnostics sorted by position. filter may be nil
// (all packages).
func RunAnalyzers(prog *Program, analyzers []*Analyzer, filter func(a *Analyzer, pkg *Package) bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	var mu sync.Mutex
	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs {
			if filter != nil && !filter(a, pkg) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Prog:     prog,
				Pkg:      pkg,
				Report: func(d Diagnostic) {
					mu.Lock()
					diags = append(diags, d)
					mu.Unlock()
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// --- shared type helpers -------------------------------------------------

// isNamed reports whether t (after pointer indirection) is the named type
// pkgName.typeName. Matching is by package *name* and type name rather
// than full import path so the same analyzers run against both the real
// tree and the testdata fixtures' stub packages.
func isNamed(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// IsArena reports whether t is workspace.Arena or *workspace.Arena.
func IsArena(t types.Type) bool { return isNamed(t, "workspace", "Arena") }

// IsArenaMark reports whether t is workspace.Mark.
func IsArenaMark(t types.Type) bool { return isNamed(t, "workspace", "Mark") }

// arenaMethodCall reports whether call is a method call on an Arena
// receiver, returning the method name and the receiver expression.
func arenaMethodCall(info *types.Info, call *ast.CallExpr) (name string, recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	tv, found := info.Types[sel.X]
	if !found || !IsArena(tv.Type) {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// IsArenaAllocCall reports whether call obtains a scratch slice from an
// Arena (a method on Arena whose single result is a slice: Complex,
// Float, Bytes today — any future typed stack matches automatically).
func IsArenaAllocCall(info *types.Info, call *ast.CallExpr) bool {
	_, _, ok := arenaMethodCall(info, call)
	if !ok {
		return false
	}
	tv, found := info.Types[call]
	if !found {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// exprKey renders an expression to a stable identity string for matching
// receivers across Mark/Release sites. Identifiers resolve through the
// type info so shadowing is handled; other expressions fall back to
// their printed form.
func exprKey(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return fmt.Sprintf("obj:%p", obj)
		}
	}
	return "expr:" + types.ExprString(e)
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
