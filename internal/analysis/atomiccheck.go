package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicCheck enforces consistent atomicity in the scheduler: a struct
// field that is anywhere accessed through sync/atomic functions
// (atomic.LoadInt64(&d.top), ...) must be accessed that way everywhere —
// a plain read or write of the same field races with the atomic users
// (the Chase-Lev deque's top/bottom discipline). Fields of the typed
// atomic.Int64/Pointer family are immune by construction; this analyzer
// exists so a refactor back to plain fields plus call-site atomics
// cannot silently mix in unsynchronised accesses. Functions annotated
// //ltephy:coldpath (init/teardown that provably runs single-threaded)
// are skipped.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "flag plain accesses to fields that are elsewhere accessed via sync/atomic",
	Run:  runAtomicCheck,
}

func runAtomicCheck(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: fields used as &x.f arguments to sync/atomic functions, and
	// the selector nodes inside those calls (excluded from pass 2).
	atomicFields := map[types.Object]bool{}
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	for _, fd := range funcDecls(pass.Pkg) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
					atomicFields[s.Obj()] = true
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// plain (racy) access.
	for _, fd := range funcDecls(pass.Pkg) {
		if pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirColdPath) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal || !atomicFields[s.Obj()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed via sync/atomic elsewhere in the package; use the atomic API on every access",
				types.ExprString(sel))
			return true
		})
	}
	return nil
}

func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Package-level Load/Store/Add/Swap/CompareAndSwap functions take the
	// address of the word; typed atomics' methods manage their own field.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
