package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc enforces the zero-alloc steady state: in every function
// reachable from a hot-path root — a Stage entry point (a method or
// function named Run or RunBatch whose first parameter is
// *workspace.Arena, the shape of uplink.Stage and uplink.BatchStage) or
// any function annotated //ltephy:hotpath — heap allocations that bypass
// the arena are flagged: make(), append that grows fresh heap memory, and
// interface boxing through ...interface{} variadics or explicit
// conversions. The call graph is walked across all loaded packages;
// //ltephy:coldpath functions (memoised warm-up, guards) are neither
// checked nor traversed, and a sanctioned allocation line carries
// //ltephy:alloc-ok. Arguments of a panic call are exempt — that path
// is already fatal.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag heap allocations in functions reachable from Stage.Run/RunBatch",
	Run:  runHotPathAlloc,
}

// funcKey canonically names a function declaration across packages.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

// declOf maps a FuncDecl to its types.Func.
func declObj(info *types.Info, fd *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return fn
}

// hotFuncs computes (once per Program) the set of funcKeys reachable
// from the stage roots over the shared call graph — static calls plus
// interface dispatch through program-declared interfaces, so a Stage
// resolved through the registry or a deque behind the taskDeque
// interface no longer hides its callees from the walk.
func (prog *Program) hotFuncs() map[string]bool {
	prog.hotOnce.Do(func() {
		g := prog.CallGraph()
		prog.hotSet = g.Reachable(g.StageRoots()).Set()
	})
	return prog.hotSet
}

// isStageEntry reports whether the declaration has the Stage entry shape:
// named Run or RunBatch with *workspace.Arena as first parameter.
func isStageEntry(fd *ast.FuncDecl, fn *types.Func) bool {
	if fd.Name.Name != "Run" && fd.Name.Name != "RunBatch" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return IsArena(sig.Params().At(0).Type())
}

// calleeFunc resolves the static callee of a call, or nil (interface
// dispatch, func values, builtins, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					// Interface methods have no body to traverse; the Stage
					// implementations are seeded by name instead.
					if !isInterfaceRecv(fn) {
						return fn
					}
				}
			}
			return nil
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isInterfaceRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// arenaExemptPkg reports whether the package provides the arena itself —
// its nil-fallback make() calls are the sanctioned allocator.
func arenaExemptPkg(pkg *Package) bool {
	return pkg.Types.Name() == "workspace"
}

func runHotPathAlloc(pass *Pass) error {
	if arenaExemptPkg(pass.Pkg) {
		return nil
	}
	hot := pass.Prog.hotFuncs()
	info := pass.Pkg.Info
	for _, fd := range funcDecls(pass.Pkg) {
		fn := declObj(info, fd)
		if fn == nil || !hot[funcKey(fn)] {
			continue
		}
		checkHotFunc(pass, info, fd)
	}
	return nil
}

func checkHotFunc(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	name := fd.Name.Name
	origins := paramAndArenaOrigins(info, fd)

	var inPanic func(n ast.Node) bool // set below via closure over panic arg spans
	panicSpans := collectPanicArgSpans(info, fd.Body)
	inPanic = func(n ast.Node) bool {
		for _, sp := range panicSpans {
			if n.Pos() >= sp[0] && n.End() <= sp[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.Pkg.AllocOKLine(pass.Prog.Fset, call.Pos()) || inPanic(call) {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := info.ObjectOf(fun).(*types.Builtin); isBuiltin {
				switch fun.Name {
				case "make":
					pass.Reportf(call.Pos(),
						"make() in hot-path function %s bypasses the arena; draw scratch from the worker arena or annotate //ltephy:coldpath / //ltephy:alloc-ok", name)
				case "append":
					if len(call.Args) > 0 && appendMayGrowHeap(info, origins, call.Args[0]) {
						pass.Reportf(call.Pos(),
							"append in hot-path function %s may grow fresh heap memory; pre-size the buffer from the arena or a parameter", name)
					}
				}
				return true
			}
		}
		// Interface boxing through ...interface{} variadics (fmt.Sprintf
		// and friends) allocates per argument.
		if boxes, callee := variadicAnyBoxing(info, call); boxes {
			pass.Reportf(call.Pos(),
				"call to %s boxes arguments into interface{} in hot-path function %s", callee, name)
		}
		return true
	})

	// Explicit interface conversions: any(x) / InterfaceType(x).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if pass.Pkg.AllocOKLine(pass.Prog.Fset, call.Pos()) || inPanic(call) {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && types.IsInterface(tv.Type) {
			if argTV, ok := info.Types[call.Args[0]]; ok && !types.IsInterface(argTV.Type) && argTV.Type != types.Typ[types.UntypedNil] {
				pass.Reportf(call.Pos(), "conversion to interface boxes a value on the heap in hot-path function %s", name)
			}
		}
		return true
	})
}

// paramAndArenaOrigins returns the set of local objects whose backing
// memory is caller-provided (parameters) or arena-carved — appends into
// those buffers are the sanctioned fill-in-place pattern (arena slices
// have cap==len, so growth would still be caught at the make site).
func paramAndArenaOrigins(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	ok := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, id := range field.Names {
				if obj := info.ObjectOf(id); obj != nil {
					ok[obj] = true
				}
			}
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, id := range field.Names {
				if obj := info.ObjectOf(id); obj != nil {
					ok[obj] = true
				}
			}
		}
	}
	var derives func(e ast.Expr) bool
	derives = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(e)
			return obj != nil && ok[obj]
		case *ast.SliceExpr:
			return derives(e.X)
		case *ast.IndexExpr:
			return derives(e.X)
		case *ast.SelectorExpr:
			return derives(e.X) // field of a parameter/receiver struct
		case *ast.CallExpr:
			if IsArenaAllocCall(info, e) {
				return true
			}
			// append(okVar, ...) stays caller/arena-backed when it does not
			// grow; treat its result as derived so the common
			// `dst = append(dst, v)` chain keeps its origin.
			if id, isIdent := ast.Unparen(e.Fun).(*ast.Ident); isIdent && id.Name == "append" && len(e.Args) > 0 {
				return derives(e.Args[0])
			}
		}
		return false
	}
	for range 2 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, isAssign := n.(*ast.AssignStmt)
			if !isAssign || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent {
					continue
				}
				if obj := info.ObjectOf(id); obj != nil && derives(as.Rhs[i]) {
					ok[obj] = true
				}
			}
			return true
		})
	}
	return ok
}

// appendMayGrowHeap reports whether the append target is neither
// caller-provided nor arena-backed (a fresh heap slice or zero value
// being grown element by element).
func appendMayGrowHeap(info *types.Info, origins map[types.Object]bool, arg ast.Expr) bool {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		return obj == nil || !origins[obj]
	case *ast.SliceExpr:
		return appendMayGrowHeap(info, origins, e.X)
	case *ast.SelectorExpr:
		return appendMayGrowHeap(info, origins, e.X)
	case *ast.IndexExpr:
		return appendMayGrowHeap(info, origins, e.X)
	case *ast.CallExpr:
		if IsArenaAllocCall(info, e) {
			return false
		}
	}
	return true
}

// variadicAnyBoxing reports whether call passes non-interface values to a
// ...interface{} variadic parameter.
func variadicAnyBoxing(info *types.Info, call *ast.CallExpr) (bool, string) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false, ""
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() == 0 {
		return false, ""
	}
	last := sig.Params().At(sig.Params().Len() - 1).Type()
	slice, ok := last.(*types.Slice)
	if !ok || !types.IsInterface(slice.Elem()) {
		return false, ""
	}
	if call.Ellipsis.IsValid() {
		return false, "" // forwarding an existing []any: no new boxing
	}
	fixed := sig.Params().Len() - 1
	for i := fixed; i < len(call.Args); i++ {
		argTV, ok := info.Types[call.Args[i]]
		if !ok {
			continue
		}
		if !types.IsInterface(argTV.Type) && !isUntypedNil(argTV.Type) {
			return true, calleeName(info, call)
		}
	}
	return false, ""
}

// collectPanicArgSpans returns the position spans of every panic(...)
// argument list in the body: allocations there are on an already-fatal
// path and exempt from the zero-alloc rule.
func collectPanicArgSpans(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			spans = append(spans, [2]token.Pos{call.Lparen, call.Rparen})
		}
		return true
	})
	return spans
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil {
			return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name())
		}
		return fn.Name()
	}
	s := types.ExprString(call.Fun)
	if i := strings.IndexByte(s, '('); i > 0 {
		s = s[:i]
	}
	return s
}
