package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockingCall enforces the deadline discipline: no operation that can
// block for an unbounded time may be reachable from a deadline-bound
// root — a Stage entry point, a //ltephy:hotpath serving-loop function,
// or a //ltephy:deadline-root driver. Inside the 5 ms subframe budget a
// blocked worker is a missed deadline, so the analyzer flags, in every
// reachable function:
//
//   - channel sends, receives and range-over-channel;
//   - select statements without a default clause (a select with default
//     is the sanctioned non-blocking poll, and its communication clauses
//     are exempt);
//   - acquisition-side sync primitives: Mutex.Lock, RWMutex.Lock/RLock,
//     WaitGroup.Wait, Cond.Wait;
//   - time.Sleep;
//   - calls into syscall/I/O packages (io, os, net, bufio, syscall,
//     net/http, os/exec) — reads and writes block on the peer.
//
// Audited blocking points opt out per function with //ltephy:blocking-ok
// plus a reason (the deque's bounded uncontended mutex, the ingest
// loop's transport-paced reads); the function's callees are still
// checked. //ltephy:coldpath removes a function from the walk entirely.
var BlockingCall = &Analyzer{
	Name: "blockingcall",
	Doc:  "flag potentially-blocking operations reachable from deadline-bound roots",
	Run:  runBlockingCall,
}

// blockingIOPkgs are the packages whose calls are assumed to reach a
// syscall or block on a peer. fmt is deliberately absent: its Fprint
// family only blocks through the passed writer, which these packages
// already cover at the write site.
var blockingIOPkgs = map[string]bool{
	"io":       true,
	"os":       true,
	"os/exec":  true,
	"net":      true,
	"net/http": true,
	"bufio":    true,
	"syscall":  true,
}

func runBlockingCall(pass *Pass) error {
	reach := pass.Prog.deadlineReach()
	info := pass.Pkg.Info
	for _, fd := range funcDecls(pass.Pkg) {
		fn := declObj(info, fd)
		if fn == nil || !reach.Contains(funcKey(fn)) {
			continue
		}
		if pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirBlockingOK) {
			continue // audited blocking point; callees are still in the walk
		}
		checkBlocking(pass, info, fd, reach)
	}
	return nil
}

func checkBlocking(pass *Pass, info *types.Info, fd *ast.FuncDecl, reach *Reach) {
	key := funcKey(declObj(info, fd))
	via := reach.Path(key)

	// Communication clauses of every select are handled at the select
	// statement itself (flagged when there is no default), so the chan
	// operations inside them are not re-reported.
	var commSpans [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				commSpans = append(commSpans, [2]token.Pos{cc.Comm.Pos(), cc.Comm.End()})
			}
		}
		return true
	})
	inComm := func(n ast.Node) bool {
		for _, sp := range commSpans {
			if n.Pos() >= sp[0] && n.End() <= sp[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inComm(n) {
				pass.Reportf(n.Pos(),
					"channel send in deadline-bound function (via %s); tasks must not block — annotate //ltephy:blocking-ok with a reason if audited", via)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm(n) {
				pass.Reportf(n.Pos(),
					"channel receive in deadline-bound function (via %s); tasks must not block — annotate //ltephy:blocking-ok with a reason if audited", via)
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(),
						"range over channel in deadline-bound function (via %s); the loop blocks until the channel closes", via)
				}
			}
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				pass.Reportf(n.Pos(),
					"select without default in deadline-bound function (via %s); add a default for a non-blocking poll or move the wait off the deadline path", via)
			}
		case *ast.CallExpr:
			checkBlockingCall(pass, info, n, via)
		}
		return true
	})
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func checkBlockingCall(pass *Pass, info *types.Info, call *ast.CallExpr, via string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Method call: the acquisition-side sync primitives block.
		if fn.Pkg().Path() == "sync" {
			switch fn.Name() {
			case "Lock", "RLock", "Wait":
				pass.Reportf(call.Pos(),
					"sync.%s acquisition in deadline-bound function (via %s); a contended lock stalls the subframe — annotate //ltephy:blocking-ok with a reason if the critical section is audited and bounded",
					fn.Name(), via)
			}
			return
		}
		if blockingIOPkgs[fn.Pkg().Path()] {
			pass.Reportf(call.Pos(),
				"%s.%s performs I/O in deadline-bound function (via %s)", fn.Pkg().Name(), fn.Name(), via)
		}
		return
	}
	// Package-level functions.
	switch {
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		pass.Reportf(call.Pos(),
			"time.Sleep in deadline-bound function (via %s); sleeping burns the subframe budget", via)
	case blockingIOPkgs[fn.Pkg().Path()]:
		pass.Reportf(call.Pos(),
			"%s.%s performs I/O or a syscall in deadline-bound function (via %s)", fn.Pkg().Name(), fn.Name(), via)
	}
}
