package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is the shared whole-program call graph every cross-function
// analyzer walks: one node per function declaration (nested function
// literals belong to their enclosing declaration — a closure's body is
// analysed as part of its creator, which is exactly the lifetime the
// arena and deadline disciplines care about), with edges for
//
//   - static calls (direct function calls and concrete method calls),
//   - interface dispatch through interfaces *declared in this program*
//     (uplink.Stage/BatchStage, sched's taskDeque, params.Model,
//     fronthaul.Predictor, ...), resolved RTA-style: an interface method
//     call fans out to the corresponding method of every program type
//     that implements the interface. Standard-library interfaces (error,
//     io.Reader) are deliberately not resolved — fanning error.Error out
//     to every sentinel type would drown the deadline analyses in
//     diagnostic paths, and none of the enforced invariants dispatch
//     through them.
//
// Calls through plain func values (struct fields like sched.Task.fn,
// parameters like turbo.Parallel) are not resolvable statically; the
// closures those fields carry are covered at their creation site instead,
// because literal bodies are analysed as part of the enclosing function.
//
// The graph is built once per Program (all analyzers share it through
// Program.CallGraph), so adding analyzers does not multiply the cost.
type CallGraph struct {
	prog  *Program
	decls map[string]*ast.FuncDecl
	pkgOf map[string]*Package
	edges map[string][]string

	namedTypes []types.Type // every named non-interface type in the program
	implCache  map[implKey][]string
}

type implKey struct {
	iface *types.Interface
	name  string
}

// CallGraph returns the program's call graph, building it on first use.
func (prog *Program) CallGraph() *CallGraph {
	prog.cgOnce.Do(func() {
		prog.cg = buildCallGraph(prog)
	})
	return prog.cg
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		prog:      prog,
		decls:     map[string]*ast.FuncDecl{},
		pkgOf:     map[string]*Package{},
		edges:     map[string][]string{},
		implCache: map[implKey][]string{},
	}
	// Index every function declaration and every named concrete type.
	for _, pkg := range prog.Pkgs {
		for _, fd := range funcDecls(pkg) {
			fn := declObj(pkg.Info, fd)
			if fn == nil {
				continue
			}
			key := funcKey(fn)
			g.decls[key] = fd
			g.pkgOf[key] = pkg
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			g.namedTypes = append(g.namedTypes, t)
		}
	}
	// Edge collection: one pass over every body.
	for key, fd := range g.decls {
		pkg := g.pkgOf[key]
		seen := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range g.callees(pkg.Info, call) {
				if !seen[callee] {
					seen[callee] = true
					g.edges[key] = append(g.edges[key], callee)
				}
			}
			return true
		})
	}
	return g
}

// callees resolves a call site to the set of possible program callees:
// one for a static call, the implementer fan-out for an interface
// dispatch, none for func values and builtins.
func (g *CallGraph) callees(info *types.Info, call *ast.CallExpr) []string {
	if fn := calleeFunc(info, call); fn != nil {
		key := funcKey(fn)
		if _, ok := g.decls[key]; ok {
			return []string{key}
		}
		return nil
	}
	// Interface dispatch: a method-value selection whose receiver is an
	// interface declared in one of the program's packages.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || !isInterfaceRecv(fn) {
		return nil
	}
	recv := s.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || g.prog.PackageOf(named.Obj().Pkg().Path()) == nil {
		return nil // unnamed or stdlib interface: not resolved
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return g.implementers(iface, fn.Name(), named.Obj().Pkg())
}

// implementers returns the funcKeys of method `name` on every program
// type implementing iface (by value or pointer receiver). ifacePkg is
// the interface's declaring package: method lookup needs it to see
// unexported methods like the scheduler's taskDeque operations.
func (g *CallGraph) implementers(iface *types.Interface, name string, ifacePkg *types.Package) []string {
	k := implKey{iface, name}
	if impls, ok := g.implCache[k]; ok {
		return impls
	}
	var impls []string
	for _, t := range g.namedTypes {
		ptr := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifacePkg, name)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		key := funcKey(m)
		if _, declared := g.decls[key]; declared {
			impls = append(impls, key)
		}
	}
	sort.Strings(impls)
	g.implCache[k] = impls
	return impls
}

// Decl returns the declaration and package of a graph node.
func (g *CallGraph) Decl(key string) (*ast.FuncDecl, *Package) {
	return g.decls[key], g.pkgOf[key]
}

// isColdPath reports whether the node is annotated //ltephy:coldpath —
// reachability walks neither check nor traverse through such functions.
func (g *CallGraph) isColdPath(key string) bool {
	fd, pkg := g.decls[key], g.pkgOf[key]
	return fd != nil && pkg.HasDirective(g.prog.Fset, fd, DirColdPath)
}

// StageRoots returns the hot-path root set: every function with the
// Stage entry shape (named Run/RunBatch with *workspace.Arena first
// parameter) plus every //ltephy:hotpath-annotated function.
func (g *CallGraph) StageRoots() []string {
	return g.roots(func(fd *ast.FuncDecl, fn *types.Func, pkg *Package) bool {
		return isStageEntry(fd, fn) || pkg.HasDirective(g.prog.Fset, fd, DirHotPath)
	})
}

// DeadlineRoots returns the deadline-bound root set: the stage roots
// plus every //ltephy:deadline-root function — the scheduler's per-user
// driver loop and the turbo window fan-out, which run inside the 5 ms
// subframe budget without themselves having the Stage entry shape.
func (g *CallGraph) DeadlineRoots() []string {
	return g.roots(func(fd *ast.FuncDecl, fn *types.Func, pkg *Package) bool {
		return isStageEntry(fd, fn) ||
			pkg.HasDirective(g.prog.Fset, fd, DirHotPath) ||
			pkg.HasDirective(g.prog.Fset, fd, DirDeadlineRoot)
	})
}

func (g *CallGraph) roots(pred func(*ast.FuncDecl, *types.Func, *Package) bool) []string {
	var out []string
	for key, fd := range g.decls {
		pkg := g.pkgOf[key]
		fn := declObj(pkg.Info, fd)
		if fn != nil && pred(fd, fn, pkg) {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Reach is the result of a reachability walk: membership plus one
// concrete call path per reached node, so analyzers can report *why* a
// function is constrained, not just that it is.
type Reach struct {
	g    *CallGraph
	in   map[string]bool
	pred map[string]string // callee -> caller that first reached it
}

// Reachable walks the graph breadth-first from roots, skipping
// //ltephy:coldpath functions (they are neither checked nor traversed).
func (g *CallGraph) Reachable(roots []string) *Reach {
	r := &Reach{g: g, in: map[string]bool{}, pred: map[string]string{}}
	var queue []string
	for _, root := range roots {
		if g.isColdPath(root) || r.in[root] {
			continue
		}
		r.in[root] = true
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.edges[cur] {
			if r.in[next] || g.isColdPath(next) {
				continue
			}
			r.in[next] = true
			r.pred[next] = cur
			queue = append(queue, next)
		}
	}
	return r
}

// Contains reports membership.
func (r *Reach) Contains(key string) bool { return r.in[key] }

// Set exposes the raw membership map (shared, do not mutate).
func (r *Reach) Set() map[string]bool { return r.in }

// Path renders the call chain from a root to key, innermost first
// ("c ← b ← a" means a calls b calls c), trimmed to a handful of hops.
func (r *Reach) Path(key string) string {
	var hops []string
	for cur := key; cur != ""; cur = r.pred[cur] {
		hops = append(hops, shortKey(cur))
		if len(hops) >= 5 {
			hops = append(hops, "…")
			break
		}
	}
	return strings.Join(hops, " ← ")
}

// shortKey trims the import path of a funcKey to its last element:
// "ltephy/internal/sched.worker.runTask" -> "sched.worker.runTask".
func shortKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// deadlineReach caches the deadline-root walk shared by blockingcall and
// crossarena.
func (prog *Program) deadlineReach() *Reach {
	prog.deadlineOnce.Do(func() {
		g := prog.CallGraph()
		prog.deadlineSet = g.Reachable(g.DeadlineRoots())
	})
	return prog.deadlineSet
}

// lockSets caches the per-function transitive lock-acquisition sets the
// lockorder analyzer computes (see lockorder.go).
func (prog *Program) lockOrder() *lockOrderFacts {
	prog.lockOnce.Do(func() {
		prog.lockFacts = buildLockOrderFacts(prog)
	})
	return prog.lockFacts
}
