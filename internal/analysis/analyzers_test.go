package analysis

import "testing"

// Each analyzer is exercised against a fixture package under
// testdata/src that contains at least one violation per rule (the test
// fails if the analyzer misses it) and a //ltephy:coldpath-annotated
// negative case proving the opt-out works.

func TestArenaPair(t *testing.T)    { AnalysisTest(t, ArenaPair, "arenapair") }
func TestArenaEscape(t *testing.T)  { AnalysisTest(t, ArenaEscape, "arenaescape") }
func TestHotPathAlloc(t *testing.T) { AnalysisTest(t, HotPathAlloc, "hotpathalloc") }
func TestDeterminism(t *testing.T)  { AnalysisTest(t, Determinism, "determinism") }
func TestAtomicCheck(t *testing.T)  { AnalysisTest(t, AtomicCheck, "atomiccheck") }
func TestBlockingCall(t *testing.T) { AnalysisTest(t, BlockingCall, "blockingcall") }
func TestSpawnCheck(t *testing.T)   { AnalysisTest(t, SpawnCheck, "spawncheck") }
func TestLockOrder(t *testing.T)    { AnalysisTest(t, LockOrder, "lockorder") }
func TestCrossArena(t *testing.T)   { AnalysisTest(t, CrossArena, "crossarena") }
