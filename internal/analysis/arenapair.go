package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaPair enforces the workspace LIFO discipline: every ws.Mark() in a
// function must be matched by ws.Release(m) on every return path, with
// the mark released on the arena it came from. Early returns and
// explicit panics that skip the Release are flagged; `defer ws.Release(m)`
// immediately satisfies all paths. Functions annotated
// //ltephy:owns-scratch (paired acquire/release helpers whose caller
// holds the mark) or //ltephy:coldpath are skipped.
//
// The analysis is structural rather than a full CFG: a Release covers a
// return point only when it precedes it inside a block that encloses the
// return, so a Release inside one branch does not excuse the paths that
// bypass that branch.
var ArenaPair = &Analyzer{
	Name: "arenapair",
	Doc:  "check that every Arena.Mark is Released on all return paths",
	Run:  runArenaPair,
}

// markSite is one `m := ws.Mark()` occurrence.
type markSite struct {
	markObj  types.Object // the mark variable
	arenaKey string       // identity of the arena expression
	arenaStr string       // printed arena expression, for messages
	pos      token.Pos
}

// releaseSite is one `ws.Release(m)` occurrence.
type releaseSite struct {
	arenaKey   string
	argObj     types.Object // nil when the argument is not a plain variable
	pos        token.Pos
	scopeStart token.Pos // span of the innermost enclosing block
	scopeEnd   token.Pos
	deferred   bool
}

func runArenaPair(pass *Pass) error {
	info := pass.Pkg.Info
	for _, fd := range funcDecls(pass.Pkg) {
		if pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirColdPath) ||
			pass.Pkg.HasDirective(pass.Prog.Fset, fd, DirOwnsScratch) {
			continue
		}
		checkMarkScopes(pass, info, fd.Body)
	}
	return nil
}

// checkMarkScopes analyzes one function body as a scope, recursing into
// nested function literals as independent scopes (their return paths are
// their own).
func checkMarkScopes(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	var marks []markSite
	var releases []releaseSite
	var returns []token.Pos
	var panics []token.Pos

	// scopeEnds records the End of every statement-list scope so each
	// release can be attributed to its innermost enclosing block.
	var scopes []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			scopes = append(scopes, n)
		}
		return true
	})
	scopeSpanOf := func(pos token.Pos) (token.Pos, token.Pos) {
		start, end := body.Pos(), body.End()
		for _, s := range scopes {
			if s.Pos() <= pos && pos < s.End() && s.End() < end {
				start, end = s.Pos(), s.End()
			}
		}
		return start, end
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkMarkScopes(pass, info, n.Body)
			return false
		case *ast.DeferStmt:
			// Releases issued by defer (directly or in a deferred closure)
			// cover every return path, including panics.
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					recordRelease(info, c, body.Pos(), body.End(), true, &releases)
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if name, recv, ok := arenaMethodCall(info, call); ok && name == "Mark" {
						if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							if obj := info.ObjectOf(id); obj != nil {
								marks = append(marks, markSite{
									markObj:  obj,
									arenaKey: exprKey(info, recv),
									arenaStr: types.ExprString(recv),
									pos:      call.Pos(),
								})
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			start, end := scopeSpanOf(n.Pos())
			recordRelease(info, n, start, end, false, &releases)
			if isBuiltinPanic(info, n) {
				panics = append(panics, n.Pos())
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})

	// Falling off the end of the body is a return path unless the final
	// statement already terminates.
	if n := len(body.List); n == 0 || !terminates(body.List[n-1]) {
		returns = append(returns, body.Rbrace)
	}

	fset := pass.Prog.Fset
	for _, m := range marks {
		var same, cross []releaseSite
		deferred := false
		for _, r := range releases {
			if r.argObj != m.markObj {
				continue
			}
			if r.arenaKey == m.arenaKey {
				same = append(same, r)
				if r.deferred {
					deferred = true
				}
			} else {
				cross = append(cross, r)
			}
		}
		for _, r := range cross {
			pass.Reportf(r.pos, "Release of mark %q on a different arena than its Mark (%s at %s)",
				m.markObj.Name(), m.arenaStr, fset.Position(m.pos))
		}
		if len(same) == 0 && len(cross) == 0 {
			pass.Reportf(m.pos, "%s.Mark() result %q is never Released; arena scratch leaks past this call",
				m.arenaStr, m.markObj.Name())
			continue
		}
		if deferred {
			continue // defer covers every return path, including panics
		}
		for _, ret := range returns {
			if ret <= m.pos {
				continue
			}
			if !releasedBefore(same, m.pos, ret) {
				pass.Reportf(ret, "return path skips %s.Release(%s) for the Mark at %s",
					m.arenaStr, m.markObj.Name(), fset.Position(m.pos))
			}
		}
		for _, pn := range panics {
			if pn <= m.pos {
				continue
			}
			if !releasedBefore(same, m.pos, pn) {
				pass.Reportf(pn, "panic skips %s.Release(%s) for the Mark at %s; use defer to release on unwind",
					m.arenaStr, m.markObj.Name(), fset.Position(m.pos))
			}
		}
	}
}

// releasedBefore reports whether some release covers the control point at
// `before`: it executed after the mark, before the point, and either in a
// block still enclosing the point (a release inside a taken branch does
// not excuse the paths that bypass the branch) or in a block that also
// contains the mark (a Mark/Release pair bracketed inside one loop body
// or conditional is locally balanced, so later exits never hold it).
func releasedBefore(rs []releaseSite, after, before token.Pos) bool {
	for _, r := range rs {
		if r.pos > after && r.pos <= before && (before <= r.scopeEnd || r.scopeStart <= after) {
			return true
		}
	}
	return false
}

func recordRelease(info *types.Info, call *ast.CallExpr, scopeStart, scopeEnd token.Pos, deferred bool, releases *[]releaseSite) {
	name, recv, ok := arenaMethodCall(info, call)
	if !ok || name != "Release" || len(call.Args) != 1 {
		return
	}
	var argObj types.Object
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		argObj = info.ObjectOf(id)
	}
	*releases = append(*releases, releaseSite{
		arenaKey:   exprKey(info, recv),
		argObj:     argObj,
		pos:        call.Pos(),
		scopeStart: scopeStart,
		scopeEnd:   scopeEnd,
		deferred:   deferred,
	})
}

func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// terminates reports whether stmt definitely transfers control (so the
// closing brace after it is unreachable). Conservative: anything not
// obviously terminating counts as falling through.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil && !hasBreak(s.Body)
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // break binds to the inner statement
		}
		return !found
	})
	return found
}
